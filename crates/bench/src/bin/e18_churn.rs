//! **E18 — churn harness**: sweep churn rate × congestion level × mesh
//! depth and report what the membership state machine guarantees under
//! each: nodes leave, rejoin and move between segments; congestion-marked
//! CSPs are discounted or discarded; holdover nodes free-run on honest
//! (widening) intervals — but containment among healthy nodes must hold
//! and every survivor must end the run `synchronized`.
//!
//! Every cell is one deterministic run on a fanout-2 mesh of LAN segments
//! (depth 1 = the paper's single Ethernet); results land in
//! `target/experiments/e18_churn.jsonl` and each cell appends one line to
//! the `BENCH_churn.json` trajectory.
//!
//! `--smoke`: one seeded light-churn run on a depth-2 mesh with congestion
//! discounting, asserting that every surviving node ends `synchronized`,
//! containment held, and rejoin recovery stayed within a bounded number of
//! rounds — plus a bit-identity check that an *empty* churn plan leaves
//! the report byte-for-byte identical to a churn-free configuration. Exits
//! non-zero on any violation — the CI gate in `scripts/check.sh`.

use nti_bench::obs_cli::ObsOpts;
use nti_bench::{
    append_bench, eng, fast_mode, header, parallel_sweep, record, secs, with_duration,
};
use nti_core::cluster::{BgLoad, Cluster, ClusterConfig, Report};
use nti_core::CongestionPolicy;
use nti_faults::ChurnPlan;
use nti_netsim::Topology;
use nti_obs::{Json, SimObserver};
use nti_simcore::{SimDuration, SimTime};

/// Mesh depths under test (fanout-2 tree of LAN segments; depth 1 is a
/// single segment).
const DEPTHS: [usize; 3] = [1, 2, 3];
/// Churn intensities. `none` doubles as the bit-identity baseline.
const CHURN: [&str; 3] = ["none", "light", "heavy"];
/// Congestion handling: unmarked channel, ECN marks discounted (interval
/// widened 4x), ECN marks discarded.
const CONGESTION: [&str; 3] = ["ignore", "discount", "discard"];

/// Depth 1 keeps the paper's 6-node single segment; deeper meshes use two
/// ordinary nodes per segment plus one bridge gateway per parent-child
/// pair (depth 3 = 7 segments, 20 nodes).
fn topology(depth: usize) -> Topology {
    if depth == 1 {
        Topology::mesh_tree(1, 2, 6)
    } else {
        Topology::mesh_tree(depth, 2, 2)
    }
}

/// The churn window: the middle third of the run, leaving the final third
/// for reintegration to complete.
fn window(cfg: &ClusterConfig) -> (SimTime, SimTime) {
    let d = cfg.duration.as_fs();
    (SimTime::from_fs(d / 3), SimTime::from_fs(2 * (d / 3)))
}

/// Deterministic plan for a churn level. Only ordinary (non-gateway) nodes
/// churn — a bridge leaving would partition the mesh, which is E16's
/// territory. Outages are staggered so at most one node is down at a time
/// (plus the dark starter early on), keeping the cell inside the fault
/// hypothesis.
fn churn_plan(level: &str, topo: &Topology, from: SimTime, until: SimTime) -> ChurnPlan {
    let span = until.saturating_since(from);
    let at = |k: u128| from + SimDuration::from_fs(span.as_fs() / 4 * k);
    let last = topo.node_count() - topo.lan_count(); // last ordinary node
    match level {
        "none" => ChurnPlan::new(),
        "light" => ChurnPlan::new().leave(last, from).join(last, at(1)),
        "heavy" => {
            // Node 1 starts dark and joins cold; two staggered
            // leave-rejoin cycles; on a real mesh, node 2 roams to the
            // root segment.
            let mut plan = ChurnPlan::new()
                .join(1, from)
                .leave(last, from)
                .join(last, at(1))
                .leave(0, at(2))
                .join(0, at(3));
            if topo.lan_count() > 1 {
                plan = plan.move_to(2, at(2), 0);
            }
            plan
        }
        other => panic!("unknown churn level {other}"),
    }
}

/// Congestion dimension: beyond `ignore`, arm the ECN threshold and add
/// background traffic so CSPs genuinely queue behind data frames.
fn apply_congestion(cfg: &mut ClusterConfig, level: &str) {
    cfg.congestion = match level {
        "ignore" => CongestionPolicy::Ignore,
        "discount" => CongestionPolicy::Discount { widen_factor: 4 },
        "discard" => CongestionPolicy::Discard,
        other => panic!("unknown congestion level {other}"),
    };
    if level != "ignore" {
        cfg.medium.ecn_threshold = Some(SimDuration::from_micros(200));
        cfg.bg_load = Some(BgLoad {
            frames_per_sec: 40.0,
            frame_bytes: 700,
        });
    }
}

fn base_cfg(depth: usize, seed: u64) -> ClusterConfig {
    let mut cfg = with_duration(ClusterConfig::default_lan(0, seed), secs(30, 12));
    cfg.topology = topology(depth);
    cfg.rate_sync = true;
    // f = 0 on real meshes for the same reason as E10: a single bridge per
    // adjacency is the only cross-segment information and must not be
    // trimmed as an "extreme" by the convergence function.
    cfg.f = if depth == 1 { 1 } else { 0 };
    cfg
}

fn run_cell(
    depth: usize,
    churn: &'static str,
    congestion: &'static str,
    obs: &SimObserver,
) -> (String, Report) {
    let mut cfg = base_cfg(depth, 0xE18 + depth as u64);
    let (from, until) = window(&cfg);
    cfg.churn_plan = churn_plan(churn, &cfg.topology, from, until);
    apply_congestion(&mut cfg, congestion);
    cfg.obs = obs.clone();
    let label = format!("d{depth}/{churn}/{congestion}");
    (label, Cluster::new(cfg).run())
}

fn cell_json(rep: &Report) -> Json {
    Json::obj([
        ("worst_precision_s", Json::num(rep.worst_precision_s)),
        ("mean_alpha_s", Json::num(rep.mean_alpha_s)),
        (
            "containment_violations",
            Json::num(rep.containment.0 as f64),
        ),
        ("containment_checks", Json::num(rep.containment.1 as f64)),
        ("joins", Json::num(rep.membership.0 as f64)),
        ("leaves", Json::num(rep.membership.1 as f64)),
        ("moves", Json::num(rep.membership.2 as f64)),
        ("crashes", Json::num(rep.churn.0 as f64)),
        ("rejoins", Json::num(rep.churn.1 as f64)),
        (
            "rejoin_recoveries",
            Json::Arr(
                rep.rejoin_recoveries
                    .iter()
                    .map(|&r| Json::num(r as f64))
                    .collect(),
            ),
        ),
        (
            "final_states",
            Json::Arr(rep.final_states.iter().map(|&s| Json::str(s)).collect()),
        ),
        (
            "health_transitions",
            Json::num(rep.health_transitions as f64),
        ),
        ("holdover_rounds", Json::num(rep.holdover_rounds as f64)),
        ("csps_marked", Json::num(rep.congestion.0 as f64)),
        ("csps_discounted", Json::num(rep.congestion.1 as f64)),
        ("csps_discarded", Json::num(rep.congestion.2 as f64)),
    ])
}

fn bench_line(label: &str, rep: &Report) {
    append_bench(
        "BENCH_churn.json",
        &Json::obj([
            ("experiment", Json::str("e18_churn")),
            ("label", Json::str(label)),
            ("fast_mode", Json::Bool(fast_mode())),
            ("result", cell_json(rep)),
        ]),
    );
}

/// Count of nodes whose final state is `synchronized` / total nodes.
fn synced(rep: &Report) -> (usize, usize) {
    let n = rep.final_states.len();
    let s = rep
        .final_states
        .iter()
        .filter(|&&s| s == "synchronized")
        .count();
    (s, n)
}

/// Bit-identity: a config whose churn plan is explicitly empty must
/// produce a byte-for-byte identical report to the untouched (churn-free)
/// configuration, and the run must be deterministic under repetition.
fn empty_plan_identity() -> bool {
    let baseline = || {
        let mut cfg = base_cfg(1, 0xE18);
        cfg.obs = SimObserver::disabled();
        cfg
    };
    let plain = format!("{:?}", Cluster::new(baseline()).run());
    let mut cfg = baseline();
    cfg.churn_plan = ChurnPlan::new();
    cfg.congestion = CongestionPolicy::Ignore;
    let empty = format!("{:?}", Cluster::new(cfg).run());
    let again = format!("{:?}", Cluster::new(baseline()).run());
    plain == empty && plain == again
}

fn smoke(obs: &SimObserver) -> i32 {
    println!("E18 churn smoke: depth-2 mesh, light churn, congestion discounting");
    let (label, rep) = run_cell(2, "light", "discount", obs);
    let (s, n) = synced(&rep);
    let ok_states = s == n;
    let ok_containment = rep.containment.0 == 0;
    let ok_recovery = rep.rejoin_recoveries.len() == 1
        && rep.rejoin_recoveries.iter().all(|&r| (1..=8).contains(&r));
    println!(
        "  {label}: precision {}, containment {}/{}, churn {}/{}, recovery {:?}, states {s}/{n} synchronized",
        eng(rep.worst_precision_s),
        rep.containment.0,
        rep.containment.1,
        rep.churn.0,
        rep.churn.1,
        rep.rejoin_recoveries,
    );
    record("e18_churn", &format!("smoke/{label}"), &cell_json(&rep));
    bench_line(&format!("smoke/{label}"), &rep);
    let ok_identity = empty_plan_identity();
    println!(
        "  empty churn plan bit-identical to churn-free run: {}",
        if ok_identity { "ok" } else { "FAIL" }
    );
    println!();
    if ok_states && ok_containment && ok_recovery && ok_identity {
        println!("e18 smoke: all survivors synchronized, containment held, recovery bounded");
        0
    } else {
        println!(
            "e18 smoke FAILED: states {} containment {} recovery {} identity {}",
            ok_states, ok_containment, ok_recovery, ok_identity
        );
        1
    }
}

fn full_matrix(obs: &SimObserver) {
    println!("E18: churn matrix — mesh depth x churn x congestion policy");
    println!();
    let h = format!(
        "{:<22} {:>7} {:>12} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "depth/churn/policy",
        "nodes",
        "precision",
        "contain",
        "j/l/m",
        "holdover",
        "marks",
        "synced"
    );
    header(&h);
    let cells: Vec<(usize, &'static str, &'static str)> = DEPTHS
        .iter()
        .flat_map(|&d| {
            CHURN
                .iter()
                .flat_map(move |&c| CONGESTION.iter().map(move |&p| (d, c, p)))
        })
        .collect();
    let results = parallel_sweep(cells, |(d, c, p)| run_cell(d, c, p, obs));
    for (label, rep) in results {
        let (s, n) = synced(&rep);
        println!(
            "{:<22} {:>7} {:>12} {:>10} {:>9} {:>9} {:>9} {:>10}",
            label,
            n,
            eng(rep.worst_precision_s),
            format!("{}/{}", rep.containment.0, rep.containment.1),
            format!(
                "{}/{}/{}",
                rep.membership.0, rep.membership.1, rep.membership.2
            ),
            rep.holdover_rounds,
            rep.congestion.0,
            format!("{s}/{n}"),
        );
        record("e18_churn", &label, &cell_json(&rep));
        bench_line(&label, &rep);
    }
    println!();
    println!("reading: under light churn every node that leaves rejoins and re-shrinks");
    println!("its accuracy within a few rounds; heavy churn adds a cold (dark-start)");
    println!("joiner and a roaming node, and the mesh still converges because bridges");
    println!("never churn. Congestion marks appear once background traffic queues the");
    println!("channel; discounting keeps marked samples as (weak) containment evidence,");
    println!("discarding trades precision under load for immunity to queueing-delay");
    println!("asymmetry. Containment among healthy nodes must hold in every cell —");
    println!("holdover nodes free-run on honestly widening intervals and are checked");
    println!("by the dedicated holdover monitor.");
}

fn main() {
    let opts = ObsOpts::from_env();
    let obs = opts.observer();
    if std::env::args().any(|a| a == "--smoke") {
        let code = smoke(&obs);
        opts.finish(&obs);
        std::process::exit(code);
    }
    full_matrix(&obs);
    opts.finish(&obs);
}
