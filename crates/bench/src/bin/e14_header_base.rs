//! **E14 — why the Receive Header Base register exists** (paper §3.4 +
//! footnote 4: an ISR "cannot reliably determine the address of the
//! receive header associated with the sampled timestamp … this might be
//! too late for avoiding a timestamp loss in case of back-to-back CSPs.
//! Also inappropriate are schemes that try to exploit a sequential order
//! of received packets, since there might be CSPs that trigger a timestamp
//! but are eventually discarded, e.g., due to an incorrect CRC").
//!
//! Ablation: a receiver is hit by back-to-back CSP pairs whose first frame
//! is sometimes CRC-corrupted; the ISR runs only after both frames landed.
//! Attribution strategies:
//!
//! * **header-base latch** (the NTI design): the ISR reads the latched
//!   base address and attributes the surviving stamp to that packet;
//! * **sequential order** (the rejected alternative): the ISR attributes
//!   the stamp to the oldest unprocessed packet.
//!
//! Misattributions put a wrong timestamp on a packet — a silent µs-to-ms
//! error injected straight into the synchronization algorithm.

use nti_bench::obs_cli::ObsOpts;
use nti_bench::{eng, header};
use nti_module::{CpldConfig, Nti, IO_RX_HDR_BASE, UTCSU_BASE};
use nti_netsim::{Comco, ComcoTiming};
use nti_obs::MetricKey;
use nti_simcore::{DriftModel, Oscillator, SimDuration, SimRng, SimTime};
use nti_utcsu::regs as uregs;
use nti_utcsu::UtcsuConfig;

struct Outcome {
    misattributions: u64,
    lost_stamps: u64,
    worst_error_s: f64,
    pairs: u64,
}

fn run(use_latch: bool, corrupt_first_every: u64) -> Outcome {
    let mut nti = Nti::new(UtcsuConfig::default(), CpldConfig::default());
    nti.write32(
        UTCSU_BASE + uregs::R_CTRL,
        uregs::CTRL_SYNCRUN | uregs::CTRL_RUN,
    );
    let mut osc = Oscillator::new(
        10_000_000,
        DriftModel::perfect(),
        SimRng::new(1),
        SimTime::ZERO,
    );
    let mut comco = Comco::new(ComcoTiming::i82596(), 10_000_000, SimRng::new(2));

    let mut out = Outcome {
        misattributions: 0,
        lost_stamps: 0,
        worst_error_s: 0.0,
        pairs: 0,
    };
    let mut slot = 0u32;
    for k in 0..500u64 {
        out.pairs += 1;
        let t0 = SimTime::from_millis(10 + k * 2);
        // Two frames 80 us apart — closer than the ISR ever runs.
        let mut trigger_real = [SimTime::ZERO; 2];
        let mut hdr_addr = [0u32; 2];
        let first_corrupted = corrupt_first_every > 0 && k % corrupt_first_every == 0;
        for (i, gap) in [SimDuration::ZERO, SimDuration::from_micros(80)]
            .iter()
            .enumerate()
        {
            let arrival = t0 + *gap;
            let plan = comco.plan_receive(arrival, 64);
            let s = slot % nti.rx_header_count();
            slot = slot.wrapping_add(1);
            hdr_addr[i] = nti.rx_header_addr(s);
            for acc in &plan.header_writes {
                let tick = osc.ticks_at(acc.at);
                nti.utcsu_mut().advance_to_tick(tick);
                nti.write32(hdr_addr[i] + acc.offset, 0);
                if acc.offset == 0x1C {
                    trigger_real[i] = acc.at;
                }
            }
        }
        // The ISR runs after both frames. The latch holds the *newest*
        // stamp (the older one was overwritten: overrun).
        let overrun = nti.utcsu().ssu[0].receive.overrun();
        if overrun {
            out.lost_stamps += 1;
        }
        let latched_base = (nti.io_read16(IO_RX_HDR_BASE) as u32) << 6;
        let stamp = match nti.utcsu_mut().ssu[0].receive.take().and_then(|s| s.time()) {
            Some(t) => t,
            None => continue,
        };
        // Which packet does the ISR attribute the stamp to?
        let attributed = if use_latch {
            // The base register names the stamped packet's header.
            if latched_base == hdr_addr[1] {
                1
            } else {
                0
            }
        } else {
            // Sequential assumption: the oldest packet that survived CRC.
            if first_corrupted {
                1
            } else {
                0
            }
        };
        // Frame 0 may be discarded by CRC *after* the trigger fired; in
        // that case only frame 1's stamp should ever be used. The stamp in
        // the latch is frame 1's (newest). Attribution is wrong whenever
        // the chosen packet is not frame 1.
        if attributed != 1 {
            out.misattributions += 1;
            let err = stamp
                .diff_secs_f64(nti_simcore::ntp::NtpTime::from_sim_time(
                    trigger_real[attributed],
                ))
                .abs();
            out.worst_error_s = out.worst_error_s.max(err);
        }
    }
    out
}

fn main() {
    let opts = ObsOpts::from_env();
    let obs = opts.observer();
    println!("E14: Receive Header Base ablation — back-to-back CSPs, 1-in-5 CRC drops");
    println!();
    let h = format!(
        "{:<26} {:>8} {:>16} {:>14} {:>14}",
        "attribution scheme", "pairs", "misattributions", "lost stamps", "worst error"
    );
    header(&h);
    for (case, (name, latch)) in [
        ("header-base latch (NTI)", true),
        ("sequential order", false),
    ]
    .into_iter()
    .enumerate()
    {
        let o = run(latch, 5);
        // Headline counts per scheme (metric "node" = scheme index).
        if let Some(g) = obs.gauge(MetricKey::node(case as u32, "app", "misattributions")) {
            g.set(o.misattributions as i64);
        }
        if let Some(g) = obs.gauge(MetricKey::node(case as u32, "app", "lost_stamps")) {
            g.set(o.lost_stamps as i64);
        }
        println!(
            "{:<26} {:>8} {:>16} {:>14} {:>14}",
            name,
            o.pairs,
            o.misattributions,
            o.lost_stamps,
            eng(o.worst_error_s)
        );
        if latch {
            assert_eq!(o.misattributions, 0, "the latch must never misattribute");
        } else {
            assert!(
                o.misattributions > 300,
                "sequential must fail on back-to-back"
            );
        }
    }
    println!();
    println!("the latch always names the stamped packet (the overrun flag reports the");
    println!("lost older stamp so software can simply wait for the next round); the");
    println!("sequential scheme silently pins ~80 us errors on the wrong packets —");
    println!("footnote 4's justification, quantified.");
    opts.finish(&obs);
}
