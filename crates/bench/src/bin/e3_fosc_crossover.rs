//! **E3 — the 14 MHz crossover** (paper §5: "G = u < 70 ns
//! (f_osc > 14 MHz) is required for a worst case precision below 1 µs"
//! when the OA convergence function is used).
//!
//! For each oscillator frequency, G = u = 1/f_osc (the paper's premise:
//! the clock granularity and rate-adjustment uncertainty of the
//! adder-based clock are both one oscillator period — the UTCSU's 2⁻²⁴ s
//! read granularity is below 1/f_osc for f_osc < 16.8 MHz). The analytic
//! worst-case impairment 14·(1/f_osc) is tabulated beside the *measured*
//! precision of a 4-node cluster with stamps quantized to G.

use nti_bench::{eng, header, parallel_sweep, secs, with_duration};
use nti_core::cluster::{Cluster, ClusterConfig};
use nti_simcore::SimDuration;

fn main() {
    println!("E3: worst-case precision vs oscillator frequency (G = u = 1/f_osc)");
    println!("paper: sub-1 us worst case requires G = u < 70 ns, i.e. f_osc > 14 MHz\n");
    let h = format!(
        "{:<10} {:>10} {:>20} {:>16} {:>12}",
        "f_osc", "G = u", "analytic 4G+10u", "measured prec", "< 1 us?"
    );
    header(&h);
    let mut crossover_mhz = None;
    let points: Vec<u64> = vec![1, 2, 4, 8, 10, 12, 14, 15, 16, 20];
    let results = parallel_sweep(points.clone(), |fosc_mhz| {
        let fosc = fosc_mhz * 1_000_000;
        let gu = 1.0 / fosc as f64;
        let mut cfg = with_duration(ClusterConfig::default_lan(4, 0xE3 + fosc_mhz), secs(60, 9));
        cfg.fosc_hz = fosc;
        cfg.granularity = SimDuration::from_secs_f64(gu);
        cfg.rate_sync = true;
        // Quiet oscillators so the measured floor is the G/u terms, not
        // residual drift.
        cfg.drift = nti_core::cluster::DriftSpec::ConstantSpread { rho_max_ppm: 2.0 };
        cfg.rho_budget_ppm = 3.0;
        Cluster::new(cfg).run()
    });
    for (fosc_mhz, rep) in points.into_iter().zip(results) {
        let gu = 1.0 / (fosc_mhz as f64 * 1e6);
        let analytic = 14.0 * gu;
        let ok = analytic < 1e-6;
        if ok && crossover_mhz.is_none() {
            crossover_mhz = Some(fosc_mhz);
        }
        println!(
            "{:<10} {:>10} {:>20} {:>16} {:>12}",
            format!("{fosc_mhz} MHz"),
            eng(gu),
            eng(analytic),
            eng(rep.worst_precision_s),
            if ok { "yes" } else { "no" }
        );
    }
    println!();
    match crossover_mhz {
        Some(m) => println!(
            "analytic crossover at {m} MHz (paper: > 14 MHz) -> {}",
            if m == 15 {
                "reproduced"
            } else {
                "check rounding"
            }
        ),
        None => println!("no crossover found (!)"),
    }
}
