//! **E6 — synchronization tightness by approach class** (paper §1 and §5):
//!
//! * purely software-based solutions: "a synchronization tightness in the
//!   ms-range";
//! * CesiumSpray-style a posteriori agreement \[VRC97\]: "10 µs-range";
//! * the CSU of \[KO87\]: "10 µs-range";
//! * the CSU successor of \[KKMS95\]: "a few µs" (with granularity ignored);
//! * the NTI: "1 µs-range" — "an improvement of at least one order of
//!   magnitude over existing approaches".
//!
//! Each class is expressed as a configuration of the same simulated
//! substrate and run under identical load; the achieved worst-case
//! precision must land in the right decade and preserve the ordering.

use nti_bench::{eng, header, record, secs, with_duration};
use nti_core::cluster::{BgLoad, Cluster, ClusterConfig};
use nti_core::params::{AlgoKind, TimestampMode};
use nti_kernel::KernelConfig;
use nti_simcore::SimDuration;

struct Class {
    name: &'static str,
    paper: &'static str,
    mode: TimestampMode,
    algo: AlgoKind,
    granularity: SimDuration,
    kernel: KernelConfig,
    rate_sync: bool,
}

fn main() {
    println!("E6: synchronization tightness by approach class (4 nodes, moderate load)");
    println!("paper §1/§5 comparison; NTI claims ≥ 1 order of magnitude improvement\n");
    let classes = [
        Class {
            name: "software (pSOS, shared CPU)",
            paper: "ms-range",
            mode: TimestampMode::Software,
            algo: AlgoKind::Ftm,
            granularity: SimDuration::from_micros(1),
            kernel: KernelConfig::psos_mvme162(),
            rate_sync: false,
        },
        Class {
            name: "software (dedicated CPU)",
            paper: "~10-100 us",
            mode: TimestampMode::Software,
            algo: AlgoKind::Ftm,
            granularity: SimDuration::from_micros(1),
            kernel: KernelConfig::dedicated_i6040(),
            rate_sync: false,
        },
        Class {
            name: "CSU [KO87], G = 1 us",
            paper: "10 us-range",
            mode: TimestampMode::InterruptRx,
            algo: AlgoKind::Ftm,
            granularity: SimDuration::from_micros(1),
            kernel: KernelConfig::psos_mvme162(),
            rate_sync: false,
        },
        Class {
            name: "KKMS95-style, G = 1 us",
            paper: "a few us",
            mode: TimestampMode::Hardware,
            algo: AlgoKind::Ftm,
            granularity: SimDuration::from_micros(1),
            kernel: KernelConfig::psos_mvme162(),
            rate_sync: false,
        },
        Class {
            name: "NTI (interval + rate sync)",
            paper: "1 us-range",
            mode: TimestampMode::Hardware,
            algo: AlgoKind::IntervalOa,
            granularity: SimDuration::from_nanos(60),
            kernel: KernelConfig::psos_mvme162(),
            rate_sync: true,
        },
    ];
    let h = format!(
        "{:<28} {:>12} {:>14} {:>14} {:>12}",
        "class", "paper says", "measured prec", "eps spread", "order ok"
    );
    header(&h);
    let mut results = Vec::new();
    for c in &classes {
        let mut cfg = with_duration(ClusterConfig::default_lan(4, 0xE6), secs(60, 12));
        cfg.mode = c.mode;
        cfg.algo = c.algo;
        cfg.granularity = c.granularity;
        cfg.kernel = c.kernel;
        cfg.rate_sync = c.rate_sync;
        cfg.bg_load = Some(BgLoad {
            frames_per_sec: 60.0,
            frame_bytes: 400,
        });
        let rep = Cluster::new(cfg).run();
        record("e6_class_table", c.name, &rep.to_json());
        results.push(rep.worst_precision_s);
        let order_ok =
            results.len() < 2 || rep.worst_precision_s <= results[results.len() - 2] * 1.5;
        println!(
            "{:<28} {:>12} {:>14} {:>14} {:>12}",
            c.name,
            c.paper,
            eng(rep.worst_precision_s),
            eng(rep.eps_spread_s),
            if order_ok { "yes" } else { "NO" }
        );
    }
    println!();
    let improvement = results[2] / results[4];
    println!(
        "NTI vs CSU improvement: {improvement:.1}x -> {}",
        if improvement >= 8.0 {
            "at least one order of magnitude (paper claim reproduced)"
        } else {
            "below the claimed order of magnitude (!)"
        }
    );
}
