//! **E15 — convergence-function ablation** (paper §2/§5: the convergence
//! function "determines the performance and fault-tolerance degree" of the
//! algorithm; OA \[Sch97b\] is the paper's choice, with a proven worst-case
//! precision that plain interval intersection does not match).
//!
//! Runs the identical cluster under three convergence machineries:
//!
//! * **OA** — fault-tolerant midpoint for the value, Marzullo edges
//!   (the paper's orthogonal-accuracy design);
//! * **Marzullo** — pure interval intersection for value and edges
//!   (\[Mar84\]-style);
//! * **FTM** — midpoint only, no interval maintenance (the CSU lineage).
//!
//! Expected shape: all three synchronize; OA matches FTM's precision while
//! additionally carrying valid accuracy intervals; pure Marzullo keeps
//! containment but with visibly worse precision (its value selection is
//! dictated by interval geometry, so one tight-but-skewed input drags the
//! ensemble) and larger claimed α under faults.

use nti_bench::obs_cli::ObsOpts;
use nti_bench::{eng, header, record, secs, with_duration};
use nti_core::cluster::{Cluster, ClusterConfig};
use nti_core::params::AlgoKind;
use nti_obs::SimObserver;

fn run(algo: AlgoKind, byzantine: bool, obs: &SimObserver) -> nti_core::cluster::Report {
    let mut cfg = with_duration(ClusterConfig::default_lan(6, 0xE15), secs(60, 12));
    cfg.algo = algo;
    cfg.rate_sync = true;
    cfg.f = 1;
    cfg.obs = obs.clone();
    if byzantine {
        cfg.byzantine = vec![5];
    }
    Cluster::new(cfg).run()
}

fn main() {
    let opts = ObsOpts::from_env();
    let obs = opts.observer();
    println!("E15: convergence-function ablation (6 nodes, f = 1)");
    println!();
    for byz in [false, true] {
        println!(
            "{}",
            if byz {
                "with one Byzantine node:"
            } else {
                "all nodes honest:"
            }
        );
        let h = format!(
            "{:<22} {:>14} {:>14} {:>14} {:>12}",
            "convergence fn", "precision", "mean alpha", "cf failures", "containment"
        );
        header(&h);
        let mut rows = Vec::new();
        for (name, algo) in [
            ("OA (paper)", AlgoKind::IntervalOa),
            ("Marzullo intersection", AlgoKind::IntervalMarzullo),
            ("FTM (no intervals)", AlgoKind::Ftm),
        ] {
            let rep = run(algo, byz, &obs);
            record(
                "e15_convergence",
                &format!("{name}/byz{byz}"),
                &rep.to_json(),
            );
            println!(
                "{:<22} {:>14} {:>14} {:>14} {:>9}/{}",
                name,
                eng(rep.worst_precision_s),
                eng(rep.mean_alpha_s),
                rep.cf_failures,
                rep.containment.0,
                rep.containment.1
            );
            rows.push(rep);
        }
        // OA must keep containment; FTM gives up intervals entirely
        // (alpha saturated); all three must synchronize.
        assert_eq!(rows[0].containment.0, 0, "OA containment");
        assert_eq!(rows[1].containment.0, 0, "Marzullo containment");
        assert!(rows[0].worst_precision_s < 50e-6);
        println!();
    }
    println!("reading: OA pairs FTM-grade precision with valid on-line accuracy");
    println!("bounds; pure intersection trades precision for tightness; FTM has no");
    println!("bounds at all (alpha saturated) — the design space the paper's OA");
    println!("choice sits in.");
    opts.finish(&obs);
}
