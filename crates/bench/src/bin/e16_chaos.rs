//! **E16 — chaos harness**: sweep fault intensity × fault type across the
//! whole injection taxonomy of `nti-faults` and report what the
//! interval-based stack *guarantees* under each: precision degrades, drops
//! are attributed, crashed nodes reintegrate — but containment among
//! correct nodes must hold (the paper's §2 claim that accuracy intervals
//! deteriorate honestly instead of lying).
//!
//! Every cell is one deterministic 6-node run; results land in
//! `target/experiments/e16_chaos.jsonl` as a machine-readable matrix.
//!
//! `--smoke`: one short run per episode type at mild intensity, asserting
//! zero containment violations (and a completed reintegration for the
//! crash scenario). Exits non-zero on any violation — the CI gate in
//! `scripts/check.sh`.

use nti_bench::obs_cli::ObsOpts;
use nti_bench::{eng, header, parallel_sweep, record, secs, with_duration};
use nti_core::cluster::{Cluster, ClusterConfig, Report};
use nti_faults::{Direction, FaultEpisode, FaultKind, FaultPlan, FaultTarget};
use nti_obs::Json;
use nti_obs::SimObserver;
use nti_simcore::{SimDuration, SimTime};

/// Sweep intensities. `level` indexes the per-scenario parameter tables.
const LEVELS: [&str; 3] = ["mild", "moderate", "severe"];

/// One chaos scenario: a name plus a plan builder over (window, level).
struct Scenario {
    name: &'static str,
    build: fn(SimTime, SimTime, usize) -> FaultPlan,
}

fn pick<T: Copy>(table: [T; 3], level: usize) -> T {
    table[level]
}

fn episode(from: SimTime, until: SimTime, target: FaultTarget, kind: FaultKind) -> FaultPlan {
    FaultPlan::new().with(FaultEpisode {
        from,
        until,
        target,
        kind,
    })
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "packet_loss",
            build: |f, u, l| {
                let rate = pick([0.05, 0.25, 0.6], l);
                episode(f, u, FaultTarget::All, FaultKind::PacketLoss { rate })
            },
        },
        Scenario {
            name: "packet_duplicate",
            build: |f, u, l| {
                let rate = pick([0.05, 0.25, 0.6], l);
                episode(f, u, FaultTarget::All, FaultKind::PacketDuplicate { rate })
            },
        },
        Scenario {
            name: "asym_delay",
            build: |f, u, l| {
                let us = pick([5, 30, 150], l);
                episode(
                    f,
                    u,
                    FaultTarget::Node(1),
                    FaultKind::PacketDelay {
                        extra: SimDuration::from_micros(us),
                        jitter: SimDuration::from_micros(us / 2),
                        direction: Direction::Rx,
                    },
                )
            },
        },
        Scenario {
            name: "node_partition",
            build: |f, u, l| {
                // Longer isolation with level: the partitioned node coasts
                // on drift compensation alone.
                let span = u.saturating_since(f);
                let frac = pick([4, 2, 1], l); // 1/4, 1/2, all of the window
                let until = f + SimDuration::from_fs(span.as_fs() / frac);
                episode(f, until, FaultTarget::Node(2), FaultKind::Partition)
            },
        },
        Scenario {
            name: "drift_excursion",
            build: |f, u, l| {
                let ppm = pick([1.0, 4.0, 12.0], l);
                episode(
                    f,
                    u,
                    FaultTarget::Node(3),
                    FaultKind::DriftExcursion { extra_ppm: ppm },
                )
            },
        },
        Scenario {
            name: "missed_trigger",
            build: |f, u, l| {
                let rate = pick([0.1, 0.4, 0.8], l);
                episode(f, u, FaultTarget::All, FaultKind::MissedTrigger { rate })
            },
        },
        Scenario {
            name: "late_trigger",
            build: |f, u, l| {
                let ns = pick([200, 2_000, 20_000], l);
                episode(
                    f,
                    u,
                    FaultTarget::All,
                    FaultKind::LateTrigger {
                        rate: 0.3,
                        delay: SimDuration::from_nanos(ns),
                    },
                )
            },
        },
        Scenario {
            name: "crc_errors",
            build: |f, u, l| {
                let rate = pick([0.05, 0.25, 0.6], l);
                episode(f, u, FaultTarget::All, FaultKind::CrcError { rate })
            },
        },
        Scenario {
            name: "byzantine",
            build: |f, u, _| episode(f, u, FaultTarget::Node(5), FaultKind::Byzantine),
        },
        Scenario {
            name: "crash_restart",
            build: |f, u, l| {
                // Outage length grows with level; restart always inside the
                // run so reintegration is exercised.
                let span = u.saturating_since(f);
                let frac = pick([4, 2, 1], l);
                let restart = f + SimDuration::from_fs(span.as_fs() / frac);
                FaultPlan::crash(4, f, Some(restart))
            },
        },
    ]
}

fn base_cfg(seed: u64) -> ClusterConfig {
    let mut cfg = with_duration(ClusterConfig::default_lan(6, seed), secs(30, 12));
    cfg.f = 1;
    cfg.rate_sync = true;
    cfg
}

/// The fault window: the middle third of the run (post-warmup, with room
/// to observe recovery before the run ends).
fn window(cfg: &ClusterConfig) -> (SimTime, SimTime) {
    let d = cfg.duration.as_fs();
    (SimTime::from_fs(d / 3), SimTime::from_fs(2 * (d / 3)))
}

fn run_cell(name: &'static str, level: usize, obs: &SimObserver) -> (String, Report) {
    let mut cfg = base_cfg(160 + level as u64);
    let (from, until) = window(&cfg);
    let scenario = scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .expect("scenario");
    cfg.fault_plan = (scenario.build)(from, until, level);
    cfg.obs = obs.clone();
    let label = format!("{}/{}", name, LEVELS[level]);
    (label, Cluster::new(cfg).run())
}

fn cell_json(rep: &Report) -> Json {
    Json::obj([
        ("worst_precision_s", Json::Num(rep.worst_precision_s)),
        ("mean_alpha_s", Json::Num(rep.mean_alpha_s)),
        (
            "containment_violations",
            Json::Num(rep.containment.0 as f64),
        ),
        ("containment_checks", Json::Num(rep.containment.1 as f64)),
        ("csps_sent", Json::Num(rep.csps.0 as f64)),
        ("csps_dropped", Json::Num(rep.csps.2 as f64)),
        ("dropped_crc", Json::Num(rep.csp_drop_causes.0 as f64)),
        ("dropped_overrun", Json::Num(rep.csp_drop_causes.1 as f64)),
        ("dropped_injected", Json::Num(rep.csp_drop_causes.2 as f64)),
        ("crashes", Json::Num(rep.churn.0 as f64)),
        ("rejoins", Json::Num(rep.churn.1 as f64)),
        (
            "rejoin_recovery_rounds",
            Json::Num(rep.rejoin_recovery_rounds as f64),
        ),
    ])
}

fn smoke(obs: &SimObserver) -> i32 {
    println!("E16 chaos smoke: every episode type at mild intensity");
    let h = format!(
        "{:<28} {:>12} {:>12} {:>8}",
        "scenario", "precision", "containment", "churn"
    );
    header(&h);
    let names: Vec<&'static str> = scenarios().iter().map(|s| s.name).collect();
    let results = parallel_sweep(names, |name| (name, run_cell(name, 0, obs).1));
    let mut failed = false;
    for (name, rep) in results {
        let ok_containment = rep.containment.0 == 0;
        let ok_churn = name != "crash_restart" || rep.churn == (1, 1);
        if !ok_containment || !ok_churn {
            failed = true;
        }
        println!(
            "{:<28} {:>12} {:>9}/{:<3} {:>3}/{:<3} {}",
            name,
            eng(rep.worst_precision_s),
            rep.containment.0,
            rep.containment.1,
            rep.churn.0,
            rep.churn.1,
            if ok_containment && ok_churn {
                "ok"
            } else {
                "FAIL"
            }
        );
        record("e16_chaos", &format!("smoke/{name}"), &cell_json(&rep));
    }
    println!();
    if failed {
        println!("e16 smoke: containment or reintegration FAILED under mild faults");
        1
    } else {
        println!("e16 smoke: containment held and the crashed node reintegrated");
        0
    }
}

fn full_matrix(obs: &SimObserver) {
    println!("E16: chaos matrix — fault type x intensity (6 nodes, f = 1)");
    println!();
    let h = format!(
        "{:<28} {:>12} {:>12} {:>14} {:>8} {:>7}",
        "scenario/intensity", "precision", "mean alpha", "drops c/o/i", "contain", "rejoin"
    );
    header(&h);
    let cells: Vec<(&'static str, usize)> = scenarios()
        .iter()
        .flat_map(|s| (0..LEVELS.len()).map(move |l| (s.name, l)))
        .collect();
    let results = parallel_sweep(cells, |(name, level)| run_cell(name, level, obs));
    for (label, rep) in results {
        println!(
            "{:<28} {:>12} {:>12} {:>14} {:>8} {:>7}",
            label,
            eng(rep.worst_precision_s),
            eng(rep.mean_alpha_s),
            format!(
                "{}/{}/{}",
                rep.csp_drop_causes.0, rep.csp_drop_causes.1, rep.csp_drop_causes.2
            ),
            format!("{}/{}", rep.containment.0, rep.containment.1),
            if rep.churn.0 > 0 {
                format!("{}r", rep.rejoin_recovery_rounds)
            } else {
                "-".into()
            }
        );
        record("e16_chaos", &label, &cell_json(&rep));
    }
    println!();
    println!("reading: mild faults leave precision in the paper's envelope with zero");
    println!("containment violations; severe faults cost precision and drop CSPs, but");
    println!("the intervals keep their containment promise while the fault load stays");
    println!("inside the f = 1 hypothesis — and a crashed node's accuracy re-shrinks");
    println!("within a few rounds of rejoining (rightmost column). Cells that fault");
    println!("ALL nodes at once (e.g. late_trigger/severe: 30% of every node's");
    println!("triggers stamped 20 us late) exceed the hypothesis, and the residual");
    println!("violations there are the expected cost of breaking it.");
}

fn main() {
    let opts = ObsOpts::from_env();
    let obs = opts.observer();
    if std::env::args().any(|a| a == "--smoke") {
        let code = smoke(&obs);
        opts.finish(&obs);
        std::process::exit(code);
    }
    full_matrix(&obs);
    opts.finish(&obs);
}
