//! **E17 — engine performance**: throughput of the timer-wheel event
//! scheduler against the reference binary-heap backend it replaced (PR 5).
//!
//! Three workloads, each run on both [`QueueKind`] backends:
//!
//! * **schedule-heavy** — N one-shot events at pseudorandom delays across
//!   every scale the wheel distinguishes (sub-granule, low levels, full
//!   wheel range, overflow heap), then drain;
//! * **cancel-heavy** — N one-shots, half of them cancelled while queued
//!   (O(1) slab invalidation vs lazy stale-pop), then drain;
//! * **cluster-replay** — a real observed cluster run (4 nodes in smoke /
//!   fast mode, 16 nodes × 60 s in full mode), events/sec taken from the
//!   engine's `events_fired` counter plus end-to-end wall-clock.
//!
//! Results accrete to `target/experiments/BENCH_engine.json` (JSON Lines,
//! one record per run) so the throughput trajectory is tracked across
//! commits alongside `BENCH_precision.json`.
//!
//! `--smoke`: small N, exits non-zero if (a) the two backends disagree on
//! a deterministic spot-check program or (b) the wheel falls clearly below
//! heap throughput on the schedule-heavy workload — the CI gate in
//! `scripts/check.sh`. The ≥2× speedup claim is asserted against the
//! full-mode (release) numbers recorded in `BENCH_engine.json`.

use nti_bench::{append_bench, fast_mode, header};
use nti_core::cluster::{Cluster, ClusterConfig};
use nti_obs::{keys, Json, SimObserver};
use nti_simcore::{Engine, QueueKind, SimDuration};
use std::time::Instant;

/// SplitMix64: deterministic delay stream, identical for both backends.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A delay in fs spanning the scales the wheel treats differently: within
/// one granule, low levels, mid levels, and far in-wheel (minutes). The
/// overflow heap (beyond ~20 h) is deliberately absent — it degenerates to
/// the baseline heap by construction and is covered by the equivalence
/// tests instead.
fn delay_fs(r: u64) -> u128 {
    let v = (r >> 2) as u128;
    match r & 3 {
        0 => v % (1 << 30),             // sub-granule
        1 => v % (1 << 40),             // low wheel levels (~1 ms)
        2 => v % (1 << 52),             // mid wheel range (~4.5 s)
        _ => (1 << 56) + v % (1 << 56), // far in-wheel (72..144 s)
    }
}

/// Schedule `n` one-shots at mixed delays, drain, return events/sec.
fn schedule_heavy(kind: QueueKind, n: u64) -> f64 {
    let mut eng: Engine<u64> = Engine::with_queue(kind);
    let mut fired = 0u64;
    let mut rng = 0x5EED_0001u64;
    let t0 = Instant::now();
    for _ in 0..n {
        let at = eng.now() + SimDuration::from_fs(delay_fs(splitmix(&mut rng)));
        eng.schedule_at(at, |s: &mut u64, _| *s += 1);
    }
    eng.run_to_completion(&mut fired);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(fired, n, "schedule-heavy lost events on {kind:?}");
    n as f64 / dt
}

/// Schedule `n` one-shots, cancel every other one while queued, drain.
/// Throughput counts schedules + cancels + fires.
fn cancel_heavy(kind: QueueKind, n: u64) -> f64 {
    let mut eng: Engine<u64> = Engine::with_queue(kind);
    let mut fired = 0u64;
    let mut rng = 0x5EED_0002u64;
    let t0 = Instant::now();
    let ids: Vec<_> = (0..n)
        .map(|_| {
            let at = eng.now() + SimDuration::from_fs(delay_fs(splitmix(&mut rng)));
            eng.schedule_at(at, |s: &mut u64, _| *s += 1)
        })
        .collect();
    for id in ids.iter().step_by(2) {
        eng.cancel(*id);
    }
    eng.run_to_completion(&mut fired);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        fired,
        n - n.div_ceil(2),
        "cancel-heavy fired a cancelled event on {kind:?}"
    );
    (n + n.div_ceil(2) + fired) as f64 / dt
}

/// One observed cluster run: (events/sec, wall seconds).
fn cluster_replay(kind: QueueKind, nodes: usize, sim: SimDuration) -> (f64, f64) {
    let obs = SimObserver::enabled();
    let mut cfg = ClusterConfig::default_lan(nodes, 17);
    cfg.duration = sim;
    cfg.warmup = SimDuration::from_fs(sim.as_fs() / 3);
    cfg.engine_queue = kind;
    cfg.obs = obs.clone();
    let t0 = Instant::now();
    let _rep = Cluster::new(cfg).run();
    let wall = t0.elapsed().as_secs_f64();
    let fired = obs
        .counter(keys::engine_events_fired())
        .map(|c| c.get())
        .unwrap_or(0);
    (fired as f64 / wall, wall)
}

/// Deterministic spot-check that both backends fire the same events in the
/// same order at the same times (the heavyweight version lives in
/// `crates/simcore/tests/engine_equiv.rs`).
fn equivalence_spot_check() -> bool {
    fn run(kind: QueueKind) -> Vec<(u64, u128)> {
        let mut eng: Engine<Vec<(u64, u128)>> = Engine::with_queue(kind);
        let mut log = Vec::new();
        let mut rng = 0x5EED_0003u64;
        let mut ids = Vec::new();
        for i in 0..500u64 {
            let r = splitmix(&mut rng);
            match r % 4 {
                0 | 1 => {
                    let at = eng.now() + SimDuration::from_fs(delay_fs(r));
                    ids.push(
                        eng.schedule_at(at, move |l: &mut Vec<_>, e: &mut Engine<_>| {
                            l.push((i, e.now().as_fs()));
                        }),
                    );
                }
                2 => {
                    if let Some(&id) = ids.get((r as usize / 4) % ids.len().max(1)) {
                        eng.cancel(id);
                    }
                }
                _ => {
                    let until = eng.now() + SimDuration::from_fs(delay_fs(r) / 2 + 1);
                    eng.run_until(&mut log, until);
                }
            }
        }
        eng.run_to_completion(&mut log);
        log
    }
    run(QueueKind::TimerWheel) == run(QueueKind::BinaryHeap)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let fast = fast_mode();
    let (n, nodes, sim) = if smoke || fast {
        (150_000u64, 4usize, SimDuration::from_secs(3))
    } else {
        (2_000_000u64, 16usize, SimDuration::from_secs(60))
    };

    header("E17 engine performance: timer wheel vs reference binary heap");
    println!(
        "workload sizes: {n} events, cluster replay {nodes} nodes x {} s",
        sim.as_fs() / 1_000_000_000_000_000
    );

    let equiv = equivalence_spot_check();
    println!(
        "backend equivalence spot-check: {}",
        if equiv { "ok" } else { "FAILED" }
    );

    let mut rates = std::collections::BTreeMap::new();
    let h = format!(
        "{:<16} {:>14} {:>14} {:>8}",
        "workload", "wheel ev/s", "heap ev/s", "speedup"
    );
    header(&h);
    for (name, f) in [
        (
            "schedule_heavy",
            schedule_heavy as fn(QueueKind, u64) -> f64,
        ),
        ("cancel_heavy", cancel_heavy),
    ] {
        let wheel = f(QueueKind::TimerWheel, n);
        let heap = f(QueueKind::BinaryHeap, n);
        println!(
            "{name:<16} {wheel:>14.0} {heap:>14.0} {:>7.2}x",
            wheel / heap
        );
        rates.insert(name, (wheel, heap));
    }
    let (replay_wheel, wall_wheel) = cluster_replay(QueueKind::TimerWheel, nodes, sim);
    let (replay_heap, wall_heap) = cluster_replay(QueueKind::BinaryHeap, nodes, sim);
    println!(
        "{:<16} {replay_wheel:>14.0} {replay_heap:>14.0} {:>7.2}x",
        "cluster_replay",
        replay_wheel / replay_heap
    );
    println!(
        "cluster replay wall-clock: wheel {wall_wheel:.3} s, heap {wall_heap:.3} s ({nodes} nodes, {} s simulated)",
        sim.as_fs() / 1_000_000_000_000_000
    );

    let (sh_wheel, sh_heap) = rates["schedule_heavy"];
    let (ch_wheel, ch_heap) = rates["cancel_heavy"];
    append_bench(
        "BENCH_engine.json",
        &Json::obj([
            ("experiment", Json::str("e17_engine_perf")),
            ("smoke", Json::Bool(smoke)),
            ("fast_mode", Json::Bool(fast)),
            ("events", Json::num(n as f64)),
            (
                "schedule_heavy",
                Json::obj([
                    ("wheel_eps", Json::num(sh_wheel)),
                    ("heap_eps", Json::num(sh_heap)),
                    ("speedup", Json::num(sh_wheel / sh_heap)),
                ]),
            ),
            (
                "cancel_heavy",
                Json::obj([
                    ("wheel_eps", Json::num(ch_wheel)),
                    ("heap_eps", Json::num(ch_heap)),
                    ("speedup", Json::num(ch_wheel / ch_heap)),
                ]),
            ),
            (
                "cluster_replay",
                Json::obj([
                    ("nodes", Json::num(nodes as f64)),
                    (
                        "sim_s",
                        Json::num((sim.as_fs() / 1_000_000_000_000_000) as f64),
                    ),
                    ("wheel_eps", Json::num(replay_wheel)),
                    ("heap_eps", Json::num(replay_heap)),
                    ("wheel_wall_s", Json::num(wall_wheel)),
                    ("heap_wall_s", Json::num(wall_heap)),
                ]),
            ),
            ("equivalence_ok", Json::Bool(equiv)),
        ]),
    );

    if smoke {
        // CI gate: the backends must agree, and the wheel must not be
        // clearly slower than the heap it replaced (0.9 margin absorbs
        // debug-build and shared-runner noise; the 2x claim is checked on
        // the recorded release-mode numbers).
        let ok = equiv && sh_wheel >= 0.9 * sh_heap;
        if !ok {
            println!(
                "e17 smoke: FAILED (equiv={equiv}, schedule-heavy wheel/heap = {:.2})",
                sh_wheel / sh_heap
            );
            std::process::exit(1);
        }
        println!(
            "e17 smoke: backends agree; wheel schedule-heavy throughput {:.2}x heap",
            sh_wheel / sh_heap
        );
    }
}
