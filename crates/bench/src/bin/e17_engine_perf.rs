//! **E17 — engine performance**: throughput of the engine's queue backends
//! against the reference binary heap. PR 5 introduced the hierarchical
//! timer wheel; PR 10 added the self-tuning [`QueueKind::Adaptive`]
//! backend (now the cluster default) after the recorded numbers showed the
//! wheel *losing* to the heap on the sparse cluster-replay workload
//! (0.78×).
//!
//! Three workloads, each run on all three [`QueueKind`] backends:
//!
//! * **schedule-heavy** — N one-shot events at pseudorandom delays across
//!   every scale the wheel distinguishes (sub-granule, low levels, full
//!   wheel range), then drain;
//! * **cancel-heavy** — N one-shots, half of them cancelled while queued
//!   (O(1) slab invalidation vs lazy stale-pop), then drain;
//! * **cluster-replay** — a real observed cluster run (4 nodes in smoke /
//!   fast mode, 16 nodes × 60 s in full mode), events/sec taken from the
//!   engine's `events_fired` counter plus end-to-end wall-clock. This is
//!   the sparse regime: ~a hundred live events however many are fired.
//!
//! Results accrete to `target/experiments/BENCH_engine.json` (JSON Lines,
//! one record per run; per-backend rows under `"rows"`) so the throughput
//! trajectory is tracked across commits alongside `BENCH_precision.json`.
//!
//! `--smoke`: small N, exits non-zero if (a) any backend disagrees with
//! the heap on a deterministic spot-check program, (b) the wheel falls
//! clearly below heap throughput on the cancel-heavy workload, or (c) the
//! **default** backend falls below ~0.95× heap on cluster-replay — the CI
//! gate in `scripts/check.sh`. Gate (c) is the regression this PR closes:
//! the pre-fix default (the fixed wheel, 0.78× heap on replay) fails it.
//! Schedule-heavy has no smoke gate: its wheel-vs-heap crossover point is
//! machine- and size-dependent at smoke N, so the ≥2× speedup claim is
//! asserted against the full-mode numbers recorded in `BENCH_engine.json`.

use nti_bench::{append_bench, fast_mode, header};
use nti_core::cluster::{Cluster, ClusterConfig};
use nti_obs::{keys, Json, SimObserver};
use nti_simcore::{Engine, QueueKind, SimDuration};
use std::time::Instant;

/// Backends under measurement, heap last (it is the denominator).
const KINDS: [(QueueKind, &str); 3] = [
    (QueueKind::TimerWheel, "wheel"),
    (QueueKind::Adaptive, "adaptive"),
    (QueueKind::BinaryHeap, "heap"),
];

/// SplitMix64: deterministic delay stream, identical for all backends.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A delay in fs spanning the scales the wheel treats differently: within
/// one granule, low levels, mid levels, and far in-wheel (minutes). The
/// overflow heap (beyond ~20 h) is deliberately absent — it degenerates to
/// the baseline heap by construction and is covered by the equivalence
/// tests instead.
fn delay_fs(r: u64) -> u128 {
    let v = (r >> 2) as u128;
    match r & 3 {
        0 => v % (1 << 30),             // sub-granule
        1 => v % (1 << 40),             // low wheel levels (~1 ms)
        2 => v % (1 << 52),             // mid wheel range (~4.5 s)
        _ => (1 << 56) + v % (1 << 56), // far in-wheel (72..144 s)
    }
}

/// Schedule `n` one-shots at mixed delays, drain, return events/sec.
fn schedule_heavy(kind: QueueKind, n: u64) -> f64 {
    let mut eng: Engine<u64> = Engine::with_queue(kind);
    let mut fired = 0u64;
    let mut rng = 0x5EED_0001u64;
    let t0 = Instant::now();
    for _ in 0..n {
        let at = eng.now() + SimDuration::from_fs(delay_fs(splitmix(&mut rng)));
        eng.schedule_at(at, |s: &mut u64, _| *s += 1);
    }
    eng.run_to_completion(&mut fired);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(fired, n, "schedule-heavy lost events on {kind:?}");
    n as f64 / dt
}

/// Schedule `n` one-shots, cancel every other one while queued, drain.
/// Throughput counts schedules + cancels + fires.
fn cancel_heavy(kind: QueueKind, n: u64) -> f64 {
    let mut eng: Engine<u64> = Engine::with_queue(kind);
    let mut fired = 0u64;
    let mut rng = 0x5EED_0002u64;
    let t0 = Instant::now();
    let ids: Vec<_> = (0..n)
        .map(|_| {
            let at = eng.now() + SimDuration::from_fs(delay_fs(splitmix(&mut rng)));
            eng.schedule_at(at, |s: &mut u64, _| *s += 1)
        })
        .collect();
    for id in ids.iter().step_by(2) {
        eng.cancel(*id);
    }
    eng.run_to_completion(&mut fired);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        fired,
        n - n.div_ceil(2),
        "cancel-heavy fired a cancelled event on {kind:?}"
    );
    (n + n.div_ceil(2) + fired) as f64 / dt
}

/// One observed cluster run, best of `reps` (events/sec, wall seconds).
/// Best-of damps shared-runner noise; the simulation itself is
/// deterministic, so reps differ only in wall-clock.
fn cluster_replay(kind: QueueKind, nodes: usize, sim: SimDuration, reps: u32) -> (f64, f64) {
    let mut best = (0.0f64, f64::INFINITY);
    for _ in 0..reps {
        let obs = SimObserver::enabled();
        let mut cfg = ClusterConfig::default_lan(nodes, 17);
        cfg.duration = sim;
        cfg.warmup = SimDuration::from_fs(sim.as_fs() / 3);
        cfg.engine_queue = kind;
        cfg.obs = obs.clone();
        let t0 = Instant::now();
        let _rep = Cluster::new(cfg).run();
        let wall = t0.elapsed().as_secs_f64();
        let fired = obs
            .counter(keys::engine_events_fired())
            .map(|c| c.get())
            .unwrap_or(0);
        let eps = fired as f64 / wall;
        if eps > best.0 {
            best = (eps, wall);
        }
    }
    best
}

/// Deterministic spot-check that every backend fires the same events in
/// the same order at the same times as the reference heap (the
/// heavyweight version lives in `crates/simcore/tests/engine_equiv.rs`).
fn equivalence_spot_check() -> bool {
    fn run(kind: QueueKind) -> Vec<(u64, u128)> {
        let mut eng: Engine<Vec<(u64, u128)>> = Engine::with_queue(kind);
        let mut log = Vec::new();
        let mut rng = 0x5EED_0003u64;
        let mut ids = Vec::new();
        for i in 0..500u64 {
            let r = splitmix(&mut rng);
            match r % 4 {
                0 | 1 => {
                    let at = eng.now() + SimDuration::from_fs(delay_fs(r));
                    ids.push(
                        eng.schedule_at(at, move |l: &mut Vec<_>, e: &mut Engine<_>| {
                            l.push((i, e.now().as_fs()));
                        }),
                    );
                }
                2 => {
                    if let Some(&id) = ids.get((r as usize / 4) % ids.len().max(1)) {
                        eng.cancel(id);
                    }
                }
                _ => {
                    let until = eng.now() + SimDuration::from_fs(delay_fs(r) / 2 + 1);
                    eng.run_until(&mut log, until);
                }
            }
        }
        eng.run_to_completion(&mut log);
        log
    }
    let oracle = run(QueueKind::BinaryHeap);
    run(QueueKind::TimerWheel) == oracle && run(QueueKind::Adaptive) == oracle
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // `--gate-queue=wheel|adaptive|heap`: run the replay gate against a
    // chosen backend instead of the compiled-in default. Lets CI (or a
    // reviewer) demonstrate that the gate catches the pre-PR-10 state:
    // `e17_engine_perf --smoke --gate-queue=wheel` reproduces the old
    // default and fails the replay leg.
    let gate_queue =
        std::env::args().find_map(|a| a.strip_prefix("--gate-queue=").map(str::to_owned));
    let fast = fast_mode();
    // Smoke replay is full-sized (not 4 nodes x 3 s like the seed): the
    // replay gate would otherwise compare sub-millisecond walls, which is
    // pure timer noise. ~100 ms per rep, best of 3, keeps the ratio
    // stable enough to gate on.
    let (n, nodes, sim, reps) = if smoke || fast {
        (150_000u64, 16usize, SimDuration::from_secs(60), 3u32)
    } else {
        (2_000_000u64, 16usize, SimDuration::from_secs(60), 3u32)
    };
    let default_name = KINDS
        .iter()
        .find(|(k, _)| *k == QueueKind::default())
        .map(|(_, s)| *s)
        .unwrap_or("?");

    header("E17 engine performance: wheel / adaptive / reference binary heap");
    println!(
        "workload sizes: {n} events, cluster replay {nodes} nodes x {} s (best of {reps}); default backend: {default_name}",
        sim.as_fs() / 1_000_000_000_000_000
    );

    let equiv = equivalence_spot_check();
    println!(
        "backend equivalence spot-check: {}",
        if equiv { "ok" } else { "FAILED" }
    );

    let h = format!(
        "{:<16} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "workload", "wheel ev/s", "adapt ev/s", "heap ev/s", "wheel/h", "adapt/h"
    );
    header(&h);

    let mut rows: Vec<Json> = Vec::new();
    // (workload, per-kind eps in KINDS order) for the smoke gate below.
    let mut eps_by_workload: Vec<(&str, [f64; 3])> = Vec::new();

    for (name, f) in [
        (
            "schedule_heavy",
            schedule_heavy as fn(QueueKind, u64) -> f64,
        ),
        ("cancel_heavy", cancel_heavy),
    ] {
        let mut eps = [0.0f64; 3];
        for (i, (kind, _)) in KINDS.iter().enumerate() {
            eps[i] = f(*kind, n);
        }
        let heap = eps[2];
        println!(
            "{name:<16} {:>13.0} {:>13.0} {:>13.0} {:>8.2}x {:>8.2}x",
            eps[0],
            eps[1],
            eps[2],
            eps[0] / heap,
            eps[1] / heap
        );
        for (i, (_, qname)) in KINDS.iter().enumerate() {
            rows.push(Json::obj([
                ("workload", Json::str(name)),
                ("queue", Json::str(*qname)),
                ("eps", Json::num(eps[i])),
                ("vs_heap", Json::num(eps[i] / heap)),
            ]));
        }
        eps_by_workload.push((name, eps));
    }

    let mut replay = [(0.0f64, 0.0f64); 3];
    for (i, (kind, _)) in KINDS.iter().enumerate() {
        replay[i] = cluster_replay(*kind, nodes, sim, reps);
    }
    let heap_eps = replay[2].0;
    println!(
        "{:<16} {:>13.0} {:>13.0} {:>13.0} {:>8.2}x {:>8.2}x",
        "cluster_replay",
        replay[0].0,
        replay[1].0,
        replay[2].0,
        replay[0].0 / heap_eps,
        replay[1].0 / heap_eps
    );
    println!(
        "cluster replay wall-clock: wheel {:.3} s, adaptive {:.3} s, heap {:.3} s ({nodes} nodes, {} s simulated)",
        replay[0].1,
        replay[1].1,
        replay[2].1,
        sim.as_fs() / 1_000_000_000_000_000
    );
    for (i, (_, qname)) in KINDS.iter().enumerate() {
        rows.push(Json::obj([
            ("workload", Json::str("cluster_replay")),
            ("queue", Json::str(*qname)),
            ("eps", Json::num(replay[i].0)),
            ("vs_heap", Json::num(replay[i].0 / heap_eps)),
            ("wall_s", Json::num(replay[i].1)),
            ("nodes", Json::num(nodes as f64)),
            (
                "sim_s",
                Json::num((sim.as_fs() / 1_000_000_000_000_000) as f64),
            ),
        ]));
    }
    eps_by_workload.push(("cluster_replay", [replay[0].0, replay[1].0, replay[2].0]));

    append_bench(
        "BENCH_engine.json",
        &Json::obj([
            ("experiment", Json::str("e17_engine_perf")),
            ("smoke", Json::Bool(smoke)),
            ("fast_mode", Json::Bool(fast)),
            ("events", Json::num(n as f64)),
            ("default_queue", Json::str(default_name)),
            ("rows", Json::Arr(rows)),
            ("equivalence_ok", Json::Bool(equiv)),
        ]),
    );

    if smoke {
        // CI gate. Three legs:
        //  * the backends must agree with the heap oracle;
        //  * cancel-heavy: the wheel's O(1)-cancel advantage is robust at
        //    any size, so falling below 0.9x heap means a real regression;
        //  * cluster-replay: the *default* backend must hold ~0.95x heap.
        //    This is the gate the pre-adaptive default (fixed wheel,
        //    0.78x) fails — the regression this bench now guards.
        // Schedule-heavy is deliberately ungated at smoke size: its
        // wheel/heap crossover is machine-dependent below ~1M events; the
        // 2x claim is checked on the recorded full-mode numbers.
        let (_, cancel_eps) = eps_by_workload[1];
        let cancel_ok = cancel_eps[0] >= 0.9 * cancel_eps[2];
        let gate_name = gate_queue.as_deref().unwrap_or(default_name);
        let gate_idx = KINDS
            .iter()
            .position(|(_, s)| *s == gate_name)
            .unwrap_or_else(|| panic!("unknown --gate-queue backend {gate_name:?}"));
        let replay_ratio = replay[gate_idx].0 / heap_eps;
        let replay_ok = replay_ratio >= 0.95;
        if !(equiv && cancel_ok && replay_ok) {
            println!(
                "e17 smoke: FAILED (equiv={equiv}, cancel-heavy wheel/heap = {:.2}, \
                 cluster-replay {gate_name}/heap = {replay_ratio:.2} [gate 0.95])",
                cancel_eps[0] / cancel_eps[2]
            );
            std::process::exit(1);
        }
        println!(
            "e17 smoke: backends agree; cancel-heavy wheel {:.2}x heap; \
             cluster-replay {gate_name} {replay_ratio:.2}x heap",
            cancel_eps[0] / cancel_eps[2]
        );
    }
}
