//! Uniform observability command-line handling for experiment binaries.
//!
//! Every experiment accepts:
//!
//! * `--obs-summary` — print the metric summary table (counters, gauges
//!   and the `p50/p90/p99/p999/max` histogram quantile lines) after the
//!   run;
//! * `--trace-out <path>` — export the structured trace; a `.json`
//!   extension produces Chrome `trace_event` format (open in
//!   `chrome://tracing` or Perfetto), anything else JSONL;
//! * `--trace-subsystems <spec>` — comma-separated subsystem filter
//!   (`engine,net,kernel,utcsu,cluster,gps,app,faults,serve` or `all`;
//!   default `all` when `--trace-out` is given).

use nti_obs::{SimObserver, Subsystem};
use std::path::PathBuf;

/// Parsed observability options.
#[derive(Debug, Clone, Default)]
pub struct ObsOpts {
    /// Print the metric summary table after the run.
    pub summary: bool,
    /// Export the trace to this path (format chosen by extension).
    pub trace_out: Option<PathBuf>,
    /// Subsystem enable mask for tracing.
    pub trace_mask: u32,
}

impl ObsOpts {
    /// Parse `std::env::args()`, consuming the flags described in the
    /// module docs. Unknown arguments are ignored (experiments have no
    /// other flags today; anything unrecognized is reported to stderr).
    pub fn from_env() -> ObsOpts {
        let mut opts = ObsOpts {
            summary: false,
            trace_out: None,
            trace_mask: u32::MAX,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--obs-summary" => opts.summary = true,
                "--trace-out" => match args.next() {
                    Some(p) => opts.trace_out = Some(PathBuf::from(p)),
                    None => eprintln!("warning: --trace-out needs a path argument"),
                },
                "--trace-subsystems" => match args.next() {
                    Some(spec) => {
                        opts.trace_mask = Subsystem::mask_from_spec(&spec);
                        for part in spec.split(',').map(str::trim) {
                            let known = part.is_empty()
                                || part.eq_ignore_ascii_case("all")
                                || Subsystem::ALL
                                    .iter()
                                    .any(|s| part.eq_ignore_ascii_case(s.name()));
                            if !known {
                                eprintln!(
                                    "warning: unknown trace subsystem {part:?} (known: \
                                     engine,net,kernel,utcsu,cluster,gps,app,faults,serve,all)"
                                );
                            }
                        }
                    }
                    None => eprintln!("warning: --trace-subsystems needs a spec argument"),
                },
                // Experiment-owned mode flags (e16_chaos, nti_analyze,
                // e19/e20 telemetry).
                "--smoke" | "--no-telemetry" | "--telemetry-gate" => {}
                "--metrics-addr" => {
                    if args.next().is_none() {
                        eprintln!("warning: --metrics-addr needs an ip:port argument");
                    }
                }
                other => eprintln!("warning: ignoring unknown argument {other:?}"),
            }
        }
        opts
    }

    /// Build the observer these options ask for: disabled when neither
    /// flag was given, metrics-only for `--obs-summary`, metrics + trace
    /// ring when `--trace-out` is set.
    pub fn observer(&self) -> SimObserver {
        match (&self.trace_out, self.summary) {
            (Some(_), _) => {
                SimObserver::with_trace(nti_obs::observer::DEFAULT_TRACE_CAPACITY, self.trace_mask)
            }
            (None, true) => SimObserver::enabled(),
            (None, false) => SimObserver::disabled(),
        }
    }

    /// Post-run reporting: print the summary table and/or write the trace
    /// file, as requested.
    pub fn finish(&self, obs: &SimObserver) {
        if self.summary {
            println!();
            println!("== observability summary ==");
            print!("{}", obs.summary_table());
        }
        if let Some(path) = &self.trace_out {
            match obs.export_trace(path) {
                Ok(()) => {
                    let n = obs.events().len();
                    println!("trace: wrote {n} events to {}", path.display());
                }
                Err(e) => eprintln!("trace: failed to write {}: {e}", path.display()),
            }
        }
    }
}
