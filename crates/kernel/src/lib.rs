#![warn(missing_docs)]

//! A pSOS⁺ᵐ-shaped real-time executive model.
//!
//! Section 4 of the paper embeds the NTI software in the industrial
//! multiprocessing kernel pSOS⁺ᵐ on a Motorola MVME-162 (M68040 + 82596CA).
//! For the reproduction, what matters about the kernel is its *timing
//! behaviour* — it is exactly the software path latencies that hardware
//! timestamping removes:
//!
//! * **ISR entry latency** (step 6 → 7 of Section 3.1): interrupt assertion
//!   to first handler instruction, "seriously impaired by code segments
//!   with interrupts disabled" — modelled as base + uniform spread + a
//!   heavy tail for long masked sections;
//! * **task dispatch latency**: message arrival to task execution
//!   (scheduling, context switch, higher-priority interference);
//! * **CSP assembly time** (step 1): building a packet before handing it to
//!   the COMCO.
//!
//! The [`ComcoDriver`] multiplexes the three message-passing clients of
//! Figure 9 over the single coprocessor: **KI** (pSOS⁺ᵐ kernel interface,
//! remote objects via RPC), **NI** (pNA⁺ TCP/IP sockets) and **CI** (the
//! clock synchronization interface). Demultiplexing is by ethertype, so
//! synchronization stays invisible to application tasks.
//!
//! Two hardware deployments from the paper are expressible as configs:
//! the shared-CPU MVME-162 (sync competes with the application) and the
//! AcQ i6040 with a dedicated M68EN360 communications CPU executing the
//! synchronization software without disturbing the M68040.

pub mod exec;

pub use exec::{Executive, Msg, Step, TaskBody, TaskId, TraceEvent};

use nti_obs::{fs_to_ns, Histogram, MetricKey, SimObserver, SpanId, Subsystem};
use nti_simcore::rng::SimRng;
use nti_simcore::time::SimDuration;
use std::collections::VecDeque;
use std::sync::Arc;

/// A latency distribution: `base + U[0, spread)`, plus — with probability
/// `tail_prob` — an additional `U[0, tail)` term modelling long
/// interrupt-masked sections / priority inversion.
#[derive(Clone, Copy, Debug)]
pub struct Latency {
    /// Deterministic floor.
    pub base: SimDuration,
    /// Uniform spread width.
    pub spread: SimDuration,
    /// Probability of hitting the heavy tail.
    pub tail_prob: f64,
    /// Heavy-tail width.
    pub tail: SimDuration,
}

impl Latency {
    /// A deterministic latency.
    pub fn fixed(d: SimDuration) -> Latency {
        Latency {
            base: d,
            spread: SimDuration::ZERO,
            tail_prob: 0.0,
            tail: SimDuration::ZERO,
        }
    }

    /// Draw one delay.
    pub fn draw(&self, rng: &mut SimRng) -> SimDuration {
        let mut d = self.base;
        if self.spread > SimDuration::ZERO {
            d += SimDuration::from_fs(rng.below(self.spread.as_fs() as u64) as u128);
        }
        if self.tail_prob > 0.0 && rng.chance(self.tail_prob) && self.tail > SimDuration::ZERO {
            d += SimDuration::from_fs(rng.below(self.tail.as_fs() as u64) as u128);
        }
        d
    }

    /// Worst-case value.
    pub fn max(&self) -> SimDuration {
        self.base + self.spread + self.tail
    }
}

/// Kernel timing configuration.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// IRQ assertion → ISR first instruction.
    pub isr_entry: Latency,
    /// ISR body execution (timestamp rescue, queue post).
    pub isr_body: Latency,
    /// Message queued → receiving task runs.
    pub task_dispatch: Latency,
    /// CSP assembly in software (step 1).
    pub csp_assembly: Latency,
}

impl KernelConfig {
    /// pSOS⁺ᵐ on a shared MVME-162 CPU under moderate application load:
    /// tens-of-µs ISR entry with a heavy tail to ~1 ms (interrupt-masked
    /// kernel sections), ~100 µs task dispatch.
    pub fn psos_mvme162() -> Self {
        KernelConfig {
            isr_entry: Latency {
                base: SimDuration::from_micros(8),
                spread: SimDuration::from_micros(40),
                tail_prob: 0.05,
                tail: SimDuration::from_micros(1000),
            },
            isr_body: Latency {
                base: SimDuration::from_micros(5),
                spread: SimDuration::from_micros(10),
                tail_prob: 0.0,
                tail: SimDuration::ZERO,
            },
            task_dispatch: Latency {
                base: SimDuration::from_micros(30),
                spread: SimDuration::from_micros(150),
                tail_prob: 0.02,
                tail: SimDuration::from_micros(3000),
            },
            csp_assembly: Latency {
                base: SimDuration::from_micros(20),
                spread: SimDuration::from_micros(60),
                tail_prob: 0.02,
                tail: SimDuration::from_micros(1500),
            },
        }
    }

    /// The i6040 deployment: the sync software runs alone on the M68EN360
    /// communications CPU — small, tight latencies, no heavy tails.
    pub fn dedicated_i6040() -> Self {
        KernelConfig {
            isr_entry: Latency {
                base: SimDuration::from_micros(3),
                spread: SimDuration::from_micros(6),
                tail_prob: 0.0,
                tail: SimDuration::ZERO,
            },
            isr_body: Latency {
                base: SimDuration::from_micros(3),
                spread: SimDuration::from_micros(4),
                tail_prob: 0.0,
                tail: SimDuration::ZERO,
            },
            task_dispatch: Latency {
                base: SimDuration::from_micros(10),
                spread: SimDuration::from_micros(20),
                tail_prob: 0.0,
                tail: SimDuration::ZERO,
            },
            csp_assembly: Latency {
                base: SimDuration::from_micros(10),
                spread: SimDuration::from_micros(15),
                tail_prob: 0.0,
                tail: SimDuration::ZERO,
            },
        }
    }

    /// Zero-latency kernel for unit tests and lower-bound experiments.
    pub fn ideal() -> Self {
        let z = Latency::fixed(SimDuration::ZERO);
        KernelConfig {
            isr_entry: z,
            isr_body: z,
            task_dispatch: z,
            csp_assembly: z,
        }
    }
}

/// Pre-resolved per-node latency histograms (see
/// [`Kernel::attach_observer`]): every drawn latency is recorded in
/// nanoseconds, so the summary table shows the realized ISR/dispatch
/// distributions, not just the configured envelopes.
#[derive(Clone, Debug)]
struct KernelObs {
    obs: SimObserver,
    node: u32,
    isr_entry_ns: Arc<Histogram>,
    isr_body_ns: Arc<Histogram>,
    dispatch_ns: Arc<Histogram>,
    csp_assembly_ns: Arc<Histogram>,
}

/// The executive: draws latencies from its configured distributions.
#[derive(Clone, Debug)]
pub struct Kernel {
    cfg: KernelConfig,
    rng: SimRng,
    obs: Option<KernelObs>,
}

impl Kernel {
    /// Create an executive.
    pub fn new(cfg: KernelConfig, rng: SimRng) -> Self {
        Kernel {
            cfg,
            rng,
            obs: None,
        }
    }

    /// Attach an observer; `node` labels this kernel's metrics. Disabled
    /// observers detach instrumentation entirely.
    pub fn attach_observer(&mut self, obs: &SimObserver, node: u32) {
        self.obs = if obs.is_enabled() {
            Some(KernelObs {
                obs: obs.clone(),
                node,
                isr_entry_ns: obs
                    .hist(MetricKey::node(node, "kernel", "isr_entry_ns"))
                    .expect("enabled"),
                isr_body_ns: obs
                    .hist(MetricKey::node(node, "kernel", "isr_body_ns"))
                    .expect("enabled"),
                dispatch_ns: obs
                    .hist(MetricKey::node(node, "kernel", "dispatch_ns"))
                    .expect("enabled"),
                csp_assembly_ns: obs
                    .hist(MetricKey::node(node, "kernel", "csp_assembly_ns"))
                    .expect("enabled"),
            })
        } else {
            None
        };
    }

    /// The configuration.
    pub fn config(&self) -> KernelConfig {
        self.cfg
    }

    /// Draw an ISR entry latency (step 6 → 7).
    pub fn isr_entry(&mut self) -> SimDuration {
        let d = self.cfg.isr_entry.draw(&mut self.rng);
        if let Some(o) = &self.obs {
            o.isr_entry_ns.record(fs_to_ns(d.as_fs()));
        }
        d
    }

    /// Draw an ISR body duration.
    pub fn isr_body(&mut self) -> SimDuration {
        let d = self.cfg.isr_body.draw(&mut self.rng);
        if let Some(o) = &self.obs {
            o.isr_body_ns.record(fs_to_ns(d.as_fs()));
        }
        d
    }

    /// Draw a task dispatch latency.
    pub fn task_dispatch(&mut self) -> SimDuration {
        let d = self.cfg.task_dispatch.draw(&mut self.rng);
        if let Some(o) = &self.obs {
            o.dispatch_ns.record(fs_to_ns(d.as_fs()));
        }
        d
    }

    /// Record the causal ISR + task-dispatch hop of a received CSP: a span
    /// ending at `end_fs` (when the sync task runs) linked under `parent`
    /// (the packet-interrupt span). Returns the new span id, or
    /// [`SpanId::NONE`] when no observer is attached or `parent` is null,
    /// so callers can thread the id unconditionally.
    pub fn isr_dispatch_span(&self, end_fs: u128, dur_fs: u128, parent: SpanId) -> SpanId {
        let Some(o) = &self.obs else {
            return SpanId::NONE;
        };
        if parent.is_none() {
            return SpanId::NONE;
        }
        let span = o.obs.new_span();
        o.obs.span_link(
            end_fs,
            dur_fs,
            o.node,
            Subsystem::Kernel,
            "isr_dispatch",
            span,
            parent,
        );
        span
    }

    /// Draw a CSP assembly duration (step 1).
    pub fn csp_assembly(&mut self) -> SimDuration {
        let d = self.cfg.csp_assembly.draw(&mut self.rng);
        if let Some(o) = &self.obs {
            o.csp_assembly_ns.record(fs_to_ns(d.as_fs()));
        }
        d
    }
}

/// The three message-passing clients multiplexed over one COMCO (Figure 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interface {
    /// Kernel Interface: pSOS⁺ᵐ remote objects (RPC).
    Ki,
    /// Network Interface: pNA⁺ TCP/IP.
    Ni,
    /// Clock Interface: the synchronization algorithm's CSPs.
    Ci,
}

/// Ethertype carrying pSOS⁺ᵐ kernel RPCs in the model.
pub const ETHERTYPE_KI: u16 = 0x8842;
/// Ethertype carrying pNA⁺/IP traffic in the model.
pub const ETHERTYPE_NI: u16 = 0x0800;
/// Ethertype carrying CSPs (must match `nti_netsim::ETHERTYPE_CSP`).
pub const ETHERTYPE_CI: u16 = 0x88F7;

/// A queued message on one of the interfaces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Which interface it belongs to.
    pub interface: Interface,
    /// Originating node id.
    pub from: usize,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// The COMCO driver: demultiplexes received frames onto KI/NI/CI queues and
/// counts traffic per interface.
#[derive(Clone, Debug, Default)]
pub struct ComcoDriver {
    ki: VecDeque<Message>,
    ni: VecDeque<Message>,
    ci: VecDeque<Message>,
    rx_counts: [u64; 3],
    tx_counts: [u64; 3],
    dropped: u64,
}

impl ComcoDriver {
    /// An empty driver.
    pub fn new() -> Self {
        ComcoDriver::default()
    }

    /// Classify an ethertype onto an interface, if any.
    pub fn classify(ethertype: u16) -> Option<Interface> {
        match ethertype {
            ETHERTYPE_KI => Some(Interface::Ki),
            ETHERTYPE_NI => Some(Interface::Ni),
            ETHERTYPE_CI => Some(Interface::Ci),
            _ => None,
        }
    }

    /// Deliver a received frame to its interface queue; unknown ethertypes
    /// are dropped (and counted).
    pub fn deliver(&mut self, ethertype: u16, from: usize, payload: Vec<u8>) -> Option<Interface> {
        match Self::classify(ethertype) {
            Some(i) => {
                self.queue_mut(i).push_back(Message {
                    interface: i,
                    from,
                    payload,
                });
                self.rx_counts[Self::idx(i)] += 1;
                Some(i)
            }
            None => {
                self.dropped += 1;
                None
            }
        }
    }

    /// Record an outgoing frame on behalf of an interface.
    pub fn record_tx(&mut self, i: Interface) {
        self.tx_counts[Self::idx(i)] += 1;
    }

    /// Pop the next message of an interface.
    pub fn pop(&mut self, i: Interface) -> Option<Message> {
        self.queue_mut(i).pop_front()
    }

    /// Queue depth of an interface.
    pub fn depth(&self, i: Interface) -> usize {
        match i {
            Interface::Ki => self.ki.len(),
            Interface::Ni => self.ni.len(),
            Interface::Ci => self.ci.len(),
        }
    }

    /// `(rx, tx)` counters for an interface.
    pub fn counts(&self, i: Interface) -> (u64, u64) {
        (self.rx_counts[Self::idx(i)], self.tx_counts[Self::idx(i)])
    }

    /// Frames dropped for unknown ethertypes.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn queue_mut(&mut self, i: Interface) -> &mut VecDeque<Message> {
        match i {
            Interface::Ki => &mut self.ki,
            Interface::Ni => &mut self.ni,
            Interface::Ci => &mut self.ci,
        }
    }

    fn idx(i: Interface) -> usize {
        match i {
            Interface::Ki => 0,
            Interface::Ni => 1,
            Interface::Ci => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_draw_within_bounds() {
        let l = Latency {
            base: SimDuration::from_micros(10),
            spread: SimDuration::from_micros(20),
            tail_prob: 0.5,
            tail: SimDuration::from_micros(100),
        };
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            let d = l.draw(&mut rng);
            assert!(d >= l.base && d <= l.max());
        }
    }

    #[test]
    fn heavy_tail_occasionally_fires() {
        let l = Latency {
            base: SimDuration::ZERO,
            spread: SimDuration::from_micros(1),
            tail_prob: 0.05,
            tail: SimDuration::from_micros(1000),
        };
        let mut rng = SimRng::new(2);
        let n_tail = (0..10_000)
            .filter(|_| l.draw(&mut rng) > SimDuration::from_micros(10))
            .count();
        assert!((300..700).contains(&n_tail), "tail hits = {n_tail}");
    }

    #[test]
    fn dedicated_cpu_is_tighter_than_shared() {
        let shared = KernelConfig::psos_mvme162();
        let dedicated = KernelConfig::dedicated_i6040();
        assert!(dedicated.isr_entry.max() < shared.isr_entry.max());
        assert!(dedicated.task_dispatch.max() < shared.task_dispatch.max());
        assert_eq!(dedicated.isr_entry.tail_prob, 0.0, "no app interference");
    }

    #[test]
    fn ideal_kernel_has_zero_latency() {
        let mut k = Kernel::new(KernelConfig::ideal(), SimRng::new(3));
        assert_eq!(k.isr_entry(), SimDuration::ZERO);
        assert_eq!(k.csp_assembly(), SimDuration::ZERO);
    }

    #[test]
    fn driver_demultiplexes_by_ethertype() {
        let mut d = ComcoDriver::new();
        assert_eq!(d.deliver(ETHERTYPE_CI, 1, vec![1]), Some(Interface::Ci));
        assert_eq!(d.deliver(ETHERTYPE_KI, 2, vec![2]), Some(Interface::Ki));
        assert_eq!(d.deliver(ETHERTYPE_NI, 3, vec![3]), Some(Interface::Ni));
        assert_eq!(d.deliver(0x1234, 4, vec![4]), None, "unknown dropped");
        assert_eq!(d.depth(Interface::Ci), 1);
        assert_eq!(d.dropped(), 1);
        let m = d.pop(Interface::Ci).unwrap();
        assert_eq!(m.from, 1);
        assert_eq!(d.depth(Interface::Ci), 0);
    }

    #[test]
    fn interfaces_are_isolated() {
        let mut d = ComcoDriver::new();
        d.deliver(ETHERTYPE_CI, 1, vec![]);
        d.deliver(ETHERTYPE_CI, 2, vec![]);
        d.deliver(ETHERTYPE_NI, 3, vec![]);
        assert_eq!(d.depth(Interface::Ci), 2);
        assert_eq!(d.depth(Interface::Ni), 1);
        assert_eq!(d.depth(Interface::Ki), 0);
        assert!(d.pop(Interface::Ki).is_none());
        // CSP traffic is invisible to NI/KI clients: popping CI doesn't
        // disturb the others.
        let _ = d.pop(Interface::Ci);
        assert_eq!(d.depth(Interface::Ni), 1);
    }

    #[test]
    fn counters_track_traffic() {
        let mut d = ComcoDriver::new();
        d.deliver(ETHERTYPE_CI, 1, vec![]);
        d.record_tx(Interface::Ci);
        d.record_tx(Interface::Ci);
        assert_eq!(d.counts(Interface::Ci), (1, 2));
        assert_eq!(d.counts(Interface::Ni), (0, 0));
    }

    #[test]
    fn fifo_order_within_interface() {
        let mut d = ComcoDriver::new();
        for i in 0..5 {
            d.deliver(ETHERTYPE_CI, i, vec![i as u8]);
        }
        for i in 0..5 {
            assert_eq!(d.pop(Interface::Ci).unwrap().from, i);
        }
    }

    #[test]
    fn ci_ethertype_matches_netsim() {
        // Compile-time-ish guard: the constant must match the netsim CSP
        // ethertype (the crates are decoupled, so assert the value).
        assert_eq!(ETHERTYPE_CI, 0x88F7);
    }
}
