//! A pSOS⁺ᵐ-shaped multitasking executive.
//!
//! Section 4 embeds the NTI software into "the state-of-the-art industrial
//! multiprocessing/multitasking real-time kernel pSOS⁺ᵐ". This module
//! models that executive's *semantics* — priority-preemptive scheduling,
//! message queues with blocking receive, counting semaphores, delays —
//! with simulated execution time, so the software structure of Figure 9
//! (application tasks + the clock-synchronization task, all over one
//! driver) can be expressed and verified as actual tasks.
//!
//! Task bodies are state machines: each [`TaskBody::step`] returns what
//! the task does next ([`Step::Compute`], [`Step::Send`], [`Step::Receive`],
//! …), and the executive charges virtual time and schedules accordingly.
//! Preemption happens whenever a scheduling event (message arrival,
//! semaphore release, delay expiry, task start) readies a higher-priority
//! task: the running task's remaining compute time is preserved and it is
//! returned to the ready queue — priority-preemptive with FIFO within a
//! priority, like pSOS.
//!
//! The cluster simulation in `nti-core` deliberately uses the *condensed*
//! latency distributions from [`crate::KernelConfig`] instead of running
//! task bodies per CSP (orders of magnitude cheaper); the executive here
//! is the reference model those distributions summarize, and is exercised
//! by its own tests plus the KI/NI/CI structure test.

use nti_obs::{fs_to_ns, Counter, Histogram, MetricKey, Payload, SimObserver, Subsystem};
use nti_simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

/// Task identifier.
pub type TaskId = usize;
/// Message queue identifier.
pub type QueueId = usize;
/// Semaphore identifier.
pub type SemId = usize;

/// A message (opaque payload plus sender).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Msg {
    /// Sending task.
    pub from: TaskId,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// What a task does next.
#[derive(Debug)]
pub enum Step {
    /// Execute for the given CPU time, then step again.
    Compute(SimDuration),
    /// Send a message to a queue (non-blocking), then step again.
    Send(QueueId, Vec<u8>),
    /// Block until a message arrives on the queue (FIFO wakeup); the
    /// message is delivered via [`TaskBody::deliver`] before the next step.
    Receive(QueueId),
    /// Acquire the semaphore (block while its count is zero).
    SemP(SemId),
    /// Release the semaphore (readies the longest-waiting task).
    SemV(SemId),
    /// Sleep for the given duration.
    Delay(SimDuration),
    /// Signal event flags to another task (pSOS `ev_send`): OR-ed into the
    /// target's pending set; wakes it if its wait condition is satisfied.
    EvSend(TaskId, u32),
    /// Block until all bits in the mask are pending (pSOS `ev_receive`
    /// with EV_ALL); the matched bits are consumed and delivered via
    /// [`TaskBody::events`].
    EvReceive(u32),
    /// Terminate the task.
    Exit,
}

/// A task's behaviour.
pub trait TaskBody {
    /// Decide the next action. Called whenever the task gets the CPU and
    /// has no outstanding action.
    fn step(&mut self, now: SimTime) -> Step;
    /// Deliver the message that satisfied a [`Step::Receive`].
    fn deliver(&mut self, _msg: Msg) {}
    /// Deliver the flags that satisfied a [`Step::EvReceive`].
    fn events(&mut self, _flags: u32) {}
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum State {
    Ready,
    Computing,
    BlockedRecv(QueueId),
    BlockedSem(SemId),
    BlockedEv(u32),
    Sleeping,
    Done,
}

struct Tcb {
    prio: u8,
    state: State,
    /// Remaining compute time when preempted.
    remaining: SimDuration,
    body: Box<dyn TaskBody>,
    /// CPU time consumed (accounting).
    cpu_used: SimDuration,
    /// Pending event flags (pSOS events).
    pending_events: u32,
    /// FIFO tiebreaker within a priority.
    enqueued_seq: u64,
    /// When the task last became Ready (for ready-queue wait accounting).
    ready_since: SimTime,
}

#[derive(Default)]
struct MsgQueue {
    messages: VecDeque<Msg>,
    waiters: VecDeque<TaskId>,
}

struct Sem {
    count: u32,
    waiters: VecDeque<TaskId>,
}

/// One entry in the executive's trace (for assertions and debugging).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Task got the CPU.
    Dispatched(TaskId),
    /// Task was preempted by a higher-priority task.
    Preempted(TaskId, TaskId),
    /// Task exited.
    Exited(TaskId),
}

/// Pre-resolved observability handles for the executive (see
/// [`Executive::attach_observer`]).
struct ExecObs {
    obs: SimObserver,
    node: u32,
    dispatches: Arc<Counter>,
    preemptions: Arc<Counter>,
    /// Time spent Ready before getting the CPU.
    queue_wait_ns: Arc<Histogram>,
}

/// The executive.
pub struct Executive {
    now: SimTime,
    tasks: Vec<Tcb>,
    queues: Vec<MsgQueue>,
    sems: Vec<Sem>,
    /// Pending timed wakeups: (time, task).
    timers: Vec<(SimTime, TaskId)>,
    /// Cost charged for each context switch.
    pub context_switch: SimDuration,
    trace: Vec<(SimTime, TraceEvent)>,
    seq: u64,
    running: Option<TaskId>,
    obs: Option<ExecObs>,
}

impl Executive {
    /// An empty executive at t = 0.
    pub fn new() -> Self {
        Executive {
            now: SimTime::ZERO,
            tasks: Vec::new(),
            queues: Vec::new(),
            sems: Vec::new(),
            timers: Vec::new(),
            context_switch: SimDuration::from_micros(15),
            trace: Vec::new(),
            seq: 0,
            running: None,
            obs: None,
        }
    }

    /// Attach an observer; `node` labels this executive's metrics.
    pub fn attach_observer(&mut self, obs: &SimObserver, node: u32) {
        self.obs = if obs.is_enabled() {
            Some(ExecObs {
                obs: obs.clone(),
                node,
                dispatches: obs
                    .counter(MetricKey::node(node, "kernel", "dispatches"))
                    .expect("enabled"),
                preemptions: obs
                    .counter(MetricKey::node(node, "kernel", "preemptions"))
                    .expect("enabled"),
                queue_wait_ns: obs
                    .hist(MetricKey::node(node, "kernel", "queue_wait_ns"))
                    .expect("enabled"),
            })
        } else {
            None
        };
    }

    /// Create a task with the given priority (higher number = higher
    /// priority, pSOS convention) in the Ready state.
    pub fn spawn(&mut self, prio: u8, body: Box<dyn TaskBody>) -> TaskId {
        let id = self.tasks.len();
        self.seq += 1;
        self.tasks.push(Tcb {
            prio,
            state: State::Ready,
            remaining: SimDuration::ZERO,
            body,
            cpu_used: SimDuration::ZERO,
            pending_events: 0,
            enqueued_seq: self.seq,
            ready_since: self.now,
        });
        id
    }

    /// Create a message queue.
    pub fn q_create(&mut self) -> QueueId {
        self.queues.push(MsgQueue::default());
        self.queues.len() - 1
    }

    /// Create a counting semaphore with an initial count.
    pub fn sm_create(&mut self, count: u32) -> SemId {
        self.sems.push(Sem {
            count,
            waiters: VecDeque::new(),
        });
        self.sems.len() - 1
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The trace so far.
    pub fn trace(&self) -> &[(SimTime, TraceEvent)] {
        &self.trace
    }

    /// CPU time consumed by a task.
    pub fn cpu_used(&self, t: TaskId) -> SimDuration {
        self.tasks[t].cpu_used
    }

    /// Whether a task has exited.
    pub fn is_done(&self, t: TaskId) -> bool {
        self.tasks[t].state == State::Done
    }

    /// Inject a message from "outside" (an ISR) into a queue, waking a
    /// waiter — how the COMCO driver posts into the CI queue.
    pub fn isr_send(&mut self, q: QueueId, data: Vec<u8>) {
        self.post(
            q,
            Msg {
                from: usize::MAX,
                data,
            },
        );
    }

    /// Signal event flags from "outside" (an ISR) to a task.
    pub fn isr_ev_send(&mut self, t: TaskId, flags: u32) {
        self.ev_send(t, flags);
    }

    fn ev_send(&mut self, t: TaskId, flags: u32) {
        self.tasks[t].pending_events |= flags;
        if let State::BlockedEv(mask) = self.tasks[t].state {
            if self.tasks[t].pending_events & mask == mask {
                self.tasks[t].pending_events &= !mask;
                self.tasks[t].body.events(mask);
                self.ready(t);
            }
        }
    }

    fn post(&mut self, q: QueueId, msg: Msg) {
        if let Some(w) = self.queues[q].waiters.pop_front() {
            self.tasks[w].body.deliver(msg);
            self.ready(w);
        } else {
            self.queues[q].messages.push_back(msg);
        }
    }

    fn ready(&mut self, t: TaskId) {
        self.seq += 1;
        self.tasks[t].state = State::Ready;
        self.tasks[t].enqueued_seq = self.seq;
        self.tasks[t].ready_since = self.now;
    }

    /// The highest-priority ready task (FIFO within a priority).
    fn pick(&self) -> Option<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == State::Ready || t.state == State::Computing)
            .max_by(|(_, a), (_, b)| {
                a.prio
                    .cmp(&b.prio)
                    .then(b.enqueued_seq.cmp(&a.enqueued_seq))
            })
            .map(|(i, _)| i)
    }

    /// The next timer expiry, if any.
    fn next_timer(&self) -> Option<(SimTime, usize)> {
        self.timers
            .iter()
            .enumerate()
            .min_by_key(|(_, (at, _))| *at)
            .map(|(i, (at, _))| (*at, i))
    }

    fn fire_timer(&mut self, idx: usize) {
        let (at, task) = self.timers.swap_remove(idx);
        debug_assert!(at >= self.now);
        self.now = self.now.max(at);
        self.ready(task);
    }

    /// Run until `until` (or until everything is idle and no timer is
    /// pending).
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            // Fire any due timers first.
            while let Some((at, idx)) = self.next_timer() {
                if at <= self.now {
                    self.fire_timer(idx);
                } else {
                    break;
                }
            }
            let Some(t) = self.pick() else {
                // Idle: jump to the next timer or stop.
                match self.next_timer() {
                    Some((at, idx)) if at <= until => {
                        self.now = at;
                        self.fire_timer(idx);
                        continue;
                    }
                    _ => {
                        self.now = until;
                        return;
                    }
                }
            };
            if self.now >= until {
                return;
            }
            if self.running != Some(t) {
                if let Some(prev) = self.running {
                    if !matches!(self.tasks[prev].state, State::Done)
                        && self.tasks[prev].state == State::Computing
                    {
                        self.trace.push((self.now, TraceEvent::Preempted(prev, t)));
                        if let Some(o) = &self.obs {
                            o.preemptions.inc();
                            if o.obs.tracing(Subsystem::Kernel) {
                                o.obs.event(
                                    self.now.as_fs(),
                                    o.node,
                                    Subsystem::Kernel,
                                    "preempted",
                                    Payload::Value { value: prev as i64 },
                                );
                            }
                        }
                    }
                }
                self.trace.push((self.now, TraceEvent::Dispatched(t)));
                if let Some(o) = &self.obs {
                    o.dispatches.inc();
                    let wait = self.now.saturating_since(self.tasks[t].ready_since);
                    o.queue_wait_ns.record(fs_to_ns(wait.as_fs()));
                    if o.obs.tracing(Subsystem::Kernel) {
                        o.obs.span(
                            self.now.as_fs(),
                            wait.as_fs(),
                            o.node,
                            Subsystem::Kernel,
                            "queue_wait",
                        );
                    }
                }
                self.now += self.context_switch;
                self.running = Some(t);
            }
            // If mid-compute, run up to the next scheduling horizon.
            if self.tasks[t].state == State::Computing {
                let horizon = self
                    .next_timer()
                    .map(|(at, _)| at)
                    .unwrap_or(SimTime::MAX)
                    .min(until);
                let slice = self.tasks[t].remaining;
                let end = self.now + slice;
                if end <= horizon {
                    self.now = end;
                    self.tasks[t].cpu_used += slice;
                    self.tasks[t].remaining = SimDuration::ZERO;
                    self.tasks[t].state = State::Ready;
                } else {
                    // A timer fires mid-slice: consume up to it, then let
                    // the wakeup (possibly higher priority) compete.
                    let used = horizon.saturating_since(self.now);
                    self.now = horizon;
                    self.tasks[t].cpu_used += used;
                    self.tasks[t].remaining -= used;
                }
                continue;
            }
            // Ask the body for its next action.
            let step = self.tasks[t].body.step(self.now);
            match step {
                Step::Compute(d) => {
                    self.tasks[t].state = State::Computing;
                    self.tasks[t].remaining = d;
                }
                Step::Send(q, data) => {
                    self.post(q, Msg { from: t, data });
                }
                Step::Receive(q) => {
                    if let Some(msg) = self.queues[q].messages.pop_front() {
                        self.tasks[t].body.deliver(msg);
                    } else {
                        self.tasks[t].state = State::BlockedRecv(q);
                        self.queues[q].waiters.push_back(t);
                        self.running = None;
                    }
                }
                Step::SemP(s) => {
                    if self.sems[s].count > 0 {
                        self.sems[s].count -= 1;
                    } else {
                        self.tasks[t].state = State::BlockedSem(s);
                        self.sems[s].waiters.push_back(t);
                        self.running = None;
                    }
                }
                Step::SemV(s) => {
                    if let Some(w) = self.sems[s].waiters.pop_front() {
                        self.ready(w);
                    } else {
                        self.sems[s].count += 1;
                    }
                }
                Step::EvSend(to, flags) => {
                    self.ev_send(to, flags);
                }
                Step::EvReceive(mask) => {
                    if self.tasks[t].pending_events & mask == mask {
                        self.tasks[t].pending_events &= !mask;
                        self.tasks[t].body.events(mask);
                    } else {
                        self.tasks[t].state = State::BlockedEv(mask);
                        self.running = None;
                    }
                }
                Step::Delay(d) => {
                    self.tasks[t].state = State::Sleeping;
                    self.timers.push((self.now + d, t));
                    self.running = None;
                }
                Step::Exit => {
                    self.tasks[t].state = State::Done;
                    self.trace.push((self.now, TraceEvent::Exited(t)));
                    self.running = None;
                }
            }
        }
    }
}

impl Default for Executive {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A scripted task body: plays back a list of steps; records delivered
    /// messages and step times into a shared log.
    struct Script {
        steps: Vec<Step>,
        idx: usize,
        log: Rc<RefCell<Vec<(SimTime, usize)>>>,
        me: usize,
        delivered: Rc<RefCell<Vec<Msg>>>,
    }

    impl Script {
        #[allow(clippy::new_ret_no_self)]
        fn new(
            me: usize,
            steps: Vec<Step>,
            log: Rc<RefCell<Vec<(SimTime, usize)>>>,
        ) -> (Box<dyn TaskBody>, Rc<RefCell<Vec<Msg>>>) {
            let delivered = Rc::new(RefCell::new(Vec::new()));
            (
                Box::new(Script {
                    steps,
                    idx: 0,
                    log,
                    me,
                    delivered: delivered.clone(),
                }),
                delivered,
            )
        }
    }

    impl TaskBody for Script {
        fn step(&mut self, now: SimTime) -> Step {
            self.log.borrow_mut().push((now, self.me));
            if self.idx >= self.steps.len() {
                return Step::Exit;
            }
            let s = std::mem::replace(&mut self.steps[self.idx], Step::Exit);
            self.idx += 1;
            s
        }
        fn deliver(&mut self, msg: Msg) {
            self.delivered.borrow_mut().push(msg);
        }
    }

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn higher_priority_runs_first() {
        let mut ex = Executive::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let (lo, _) = Script::new(0, vec![Step::Compute(us(100))], log.clone());
        let (hi, _) = Script::new(1, vec![Step::Compute(us(100))], log.clone());
        ex.spawn(10, lo);
        ex.spawn(200, hi);
        ex.run_until(SimTime::from_millis(10));
        let order: Vec<usize> = log.borrow().iter().map(|&(_, who)| who).collect();
        assert_eq!(order[0], 1, "high priority first: {order:?}");
        assert!(ex.is_done(0) && ex.is_done(1));
    }

    #[test]
    fn blocking_receive_wakes_on_send() {
        let mut ex = Executive::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let q = 0;
        let (rx, delivered) = Script::new(
            0,
            vec![Step::Receive(q), Step::Compute(us(10))],
            log.clone(),
        );
        let (tx, _) = Script::new(
            1,
            vec![Step::Compute(us(500)), Step::Send(q, vec![42])],
            log.clone(),
        );
        ex.q_create();
        // Receiver has HIGHER priority: it must still block and let the
        // sender run, then preempt-style resume on delivery.
        ex.spawn(100, rx);
        ex.spawn(10, tx);
        ex.run_until(SimTime::from_millis(10));
        assert_eq!(delivered.borrow().len(), 1);
        assert_eq!(delivered.borrow()[0].data, vec![42]);
        assert_eq!(delivered.borrow()[0].from, 1);
        assert!(ex.is_done(0));
    }

    #[test]
    fn message_waits_when_no_receiver_yet() {
        let mut ex = Executive::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let q = 0;
        let (tx, _) = Script::new(0, vec![Step::Send(q, vec![7])], log.clone());
        let (rx, delivered) = Script::new(
            1,
            vec![Step::Compute(us(300)), Step::Receive(q)],
            log.clone(),
        );
        ex.q_create();
        ex.spawn(50, tx);
        ex.spawn(60, rx);
        ex.run_until(SimTime::from_millis(5));
        assert_eq!(
            delivered.borrow().len(),
            1,
            "queued message consumed without blocking"
        );
    }

    #[test]
    fn semaphore_mutual_exclusion_fifo() {
        let mut ex = Executive::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let s = 0;
        // Three tasks of equal priority each take the sem, compute, release.
        for i in 0..3usize {
            let (body, _) = Script::new(
                i,
                vec![Step::SemP(s), Step::Compute(us(100)), Step::SemV(s)],
                log.clone(),
            );
            ex.spawn(50, body);
        }
        ex.sm_create(1);
        ex.run_until(SimTime::from_millis(10));
        assert!((0..3).all(|t| ex.is_done(t)));
        // Everyone got ~100 us of CPU.
        for t in 0..3 {
            assert_eq!(ex.cpu_used(t), us(100));
        }
    }

    #[test]
    fn delay_expiry_preempts_lower_priority() {
        let mut ex = Executive::new();
        ex.context_switch = SimDuration::ZERO;
        let log = Rc::new(RefCell::new(Vec::new()));
        // High-priority task sleeps 1 ms then computes; low-priority task
        // computes 10 ms. The wakeup must preempt mid-compute.
        let (hi, _) = Script::new(
            0,
            vec![
                Step::Delay(SimDuration::from_millis(1)),
                Step::Compute(us(50)),
            ],
            log.clone(),
        );
        let (lo, _) = Script::new(
            1,
            vec![Step::Compute(SimDuration::from_millis(10))],
            log.clone(),
        );
        let hi_id = ex.spawn(200, hi);
        let lo_id = ex.spawn(10, lo);
        ex.run_until(SimTime::from_millis(20));
        assert!(ex.is_done(hi_id) && ex.is_done(lo_id));
        // The preemption must appear in the trace.
        assert!(
            ex.trace().iter().any(
                |(_, e)| matches!(e, TraceEvent::Preempted(l, h) if *l == lo_id && *h == hi_id)
            ),
            "trace: {:?}",
            ex.trace()
        );
        // Low task's total CPU must still be the full 10 ms.
        assert_eq!(ex.cpu_used(lo_id), SimDuration::from_millis(10));
    }

    #[test]
    fn isr_send_wakes_protocol_task() {
        // The Figure 9 shape: a protocol task blocks on the CI queue; an
        // "ISR" posts a CSP into it from outside the executive.
        let mut ex = Executive::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let q = 0;
        let (proto, delivered) = Script::new(
            0,
            vec![Step::Receive(q), Step::Compute(us(30))],
            log.clone(),
        );
        ex.q_create();
        let id = ex.spawn(150, proto);
        ex.run_until(SimTime::from_millis(1)); // blocks
        assert!(!ex.is_done(id));
        ex.isr_send(q, vec![1, 2, 3]);
        ex.run_until(SimTime::from_millis(2));
        assert!(ex.is_done(id));
        assert_eq!(delivered.borrow()[0].data, vec![1, 2, 3]);
        assert_eq!(delivered.borrow()[0].from, usize::MAX, "ISR origin");
    }

    #[test]
    fn equal_priority_runs_to_completion_in_fifo_order() {
        // pSOS semantics: strict priority, FIFO within a priority, no
        // automatic round-robin — each task runs to completion before the
        // next equal-priority task is dispatched.
        let mut ex = Executive::new();
        ex.context_switch = SimDuration::ZERO;
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3usize {
            let (b, _) = Script::new(i, vec![Step::Compute(us(10))], log.clone());
            ex.spawn(50, b);
        }
        ex.run_until(SimTime::from_millis(1));
        let order: Vec<usize> = log.borrow().iter().map(|&(_, w)| w).collect::<Vec<_>>();
        assert_eq!(order, vec![0, 0, 1, 1, 2, 2], "{order:?}");
    }

    #[test]
    fn cpu_accounting_and_virtual_time() {
        let mut ex = Executive::new();
        ex.context_switch = us(5);
        let log = Rc::new(RefCell::new(Vec::new()));
        let (a, _) = Script::new(
            0,
            vec![Step::Compute(us(100)), Step::Compute(us(50))],
            log.clone(),
        );
        let id = ex.spawn(10, a);
        ex.run_until(SimTime::from_secs(1));
        assert_eq!(ex.cpu_used(id), us(150));
        assert!(ex.is_done(id));
    }

    /// Scripted body that also records delivered event flags.
    struct EvScript {
        steps: Vec<Step>,
        idx: usize,
        got: Rc<RefCell<Vec<u32>>>,
    }
    impl TaskBody for EvScript {
        fn step(&mut self, _now: SimTime) -> Step {
            if self.idx >= self.steps.len() {
                return Step::Exit;
            }
            let s = std::mem::replace(&mut self.steps[self.idx], Step::Exit);
            self.idx += 1;
            s
        }
        fn events(&mut self, flags: u32) {
            self.got.borrow_mut().push(flags);
        }
    }

    #[test]
    fn event_flags_block_until_all_set() {
        let mut ex = Executive::new();
        let got = Rc::new(RefCell::new(Vec::new()));
        let waiter = ex.spawn(
            100,
            Box::new(EvScript {
                steps: vec![Step::EvReceive(0b11), Step::Compute(us(5))],
                idx: 0,
                got: got.clone(),
            }),
        );
        ex.run_until(SimTime::from_millis(1));
        assert!(!ex.is_done(waiter), "blocked on both flags");
        ex.isr_ev_send(waiter, 0b01);
        ex.run_until(SimTime::from_millis(2));
        assert!(!ex.is_done(waiter), "only one flag set");
        ex.isr_ev_send(waiter, 0b10);
        ex.run_until(SimTime::from_millis(3));
        assert!(ex.is_done(waiter));
        assert_eq!(*got.borrow(), vec![0b11]);
    }

    #[test]
    fn event_flags_already_pending_do_not_block() {
        let mut ex = Executive::new();
        let got = Rc::new(RefCell::new(Vec::new()));
        let waiter = ex.spawn(
            50,
            Box::new(EvScript {
                steps: vec![Step::Compute(us(50)), Step::EvReceive(0b100)],
                idx: 0,
                got: got.clone(),
            }),
        );
        ex.isr_ev_send(waiter, 0b100);
        ex.run_until(SimTime::from_millis(1));
        assert!(ex.is_done(waiter));
        assert_eq!(*got.borrow(), vec![0b100]);
    }

    #[test]
    fn task_to_task_event_send() {
        let mut ex = Executive::new();
        let got = Rc::new(RefCell::new(Vec::new()));
        let waiter = ex.spawn(
            100,
            Box::new(EvScript {
                steps: vec![Step::EvReceive(1)],
                idx: 0,
                got: got.clone(),
            }),
        );
        let _signaller = ex.spawn(
            10,
            Box::new(EvScript {
                steps: vec![Step::Compute(us(200)), Step::EvSend(waiter, 1)],
                idx: 0,
                got: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        ex.run_until(SimTime::from_millis(5));
        assert!(ex.is_done(waiter));
        assert_eq!(*got.borrow(), vec![1]);
    }

    #[test]
    fn idle_executive_advances_to_until() {
        let mut ex = Executive::new();
        ex.run_until(SimTime::from_secs(3));
        assert_eq!(ex.now(), SimTime::from_secs(3));
    }
}
