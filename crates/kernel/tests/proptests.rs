//! Property-based tests for the executive and latency models.

use nti_kernel::exec::{Executive, Step, TaskBody};
use nti_kernel::{KernelConfig, Latency};
use nti_simcore::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// A task that computes random bursts then exits.
struct Burst {
    bursts: Vec<u64>,
    idx: usize,
    total: Rc<RefCell<SimDuration>>,
}

impl TaskBody for Burst {
    fn step(&mut self, _now: SimTime) -> Step {
        if self.idx >= self.bursts.len() {
            return Step::Exit;
        }
        let d = SimDuration::from_micros(self.bursts[self.idx]);
        *self.total.borrow_mut() += d;
        self.idx += 1;
        Step::Compute(d)
    }
}

proptest! {
    /// CPU accounting is exact: each task's cpu_used equals the sum of its
    /// compute bursts, regardless of priorities and preemption.
    #[test]
    fn cpu_accounting_exact(
        tasks in proptest::collection::vec(
            (1u8..255, proptest::collection::vec(1u64..500, 0..6)),
            1..6,
        ),
    ) {
        let mut ex = Executive::new();
        ex.context_switch = SimDuration::from_micros(3);
        let mut expected = Vec::new();
        for (prio, bursts) in tasks {
            let total = Rc::new(RefCell::new(SimDuration::ZERO));
            let id = ex.spawn(prio, Box::new(Burst { bursts, idx: 0, total: total.clone() }));
            expected.push((id, total));
        }
        ex.run_until(SimTime::from_secs(60));
        for (id, total) in expected {
            prop_assert!(ex.is_done(id), "task {id} must finish");
            prop_assert_eq!(ex.cpu_used(id), *total.borrow(), "task {}", id);
        }
    }

    /// Virtual time never runs backwards and always reaches `until` when
    /// the system quiesces.
    #[test]
    fn time_monotone_and_reaches_until(
        tasks in proptest::collection::vec(
            proptest::collection::vec(1u64..200, 0..4),
            0..4,
        ),
        until_ms in 1u64..1000,
    ) {
        let mut ex = Executive::new();
        for bursts in tasks {
            let total = Rc::new(RefCell::new(SimDuration::ZERO));
            ex.spawn(50, Box::new(Burst { bursts, idx: 0, total }));
        }
        let until = SimTime::from_millis(until_ms);
        ex.run_until(until);
        prop_assert!(ex.now() >= until || ex.now() == until);
    }

    /// Latency draws always land in [base, base + spread + tail].
    #[test]
    fn latency_draw_bounded(
        seed in any::<u64>(),
        base_us in 0u64..1000,
        spread_us in 0u64..1000,
        tail_us in 0u64..5000,
        p in 0.0f64..1.0,
    ) {
        let l = Latency {
            base: SimDuration::from_micros(base_us),
            spread: SimDuration::from_micros(spread_us),
            tail_prob: p,
            tail: SimDuration::from_micros(tail_us),
        };
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            let d = l.draw(&mut rng);
            prop_assert!(d >= l.base && d <= l.max());
        }
    }

    /// The three stock kernel configs are internally ordered: ideal ≤
    /// dedicated ≤ shared for every latency's worst case.
    #[test]
    fn config_ordering_holds(_x in 0u8..1) {
        let ideal = KernelConfig::ideal();
        let ded = KernelConfig::dedicated_i6040();
        let shared = KernelConfig::psos_mvme162();
        for f in [
            |k: &KernelConfig| k.isr_entry.max(),
            |k: &KernelConfig| k.isr_body.max(),
            |k: &KernelConfig| k.task_dispatch.max(),
            |k: &KernelConfig| k.csp_assembly.max(),
        ] {
            prop_assert!(f(&ideal) <= f(&ded));
            prop_assert!(f(&ded) <= f(&shared));
        }
    }
}
