//! Property-based tests for the UTCSU model.

use nti_simcore::ntp::NtpTime;
use nti_simcore::Accuracy;
use nti_utcsu::ltu::Ltu;
use nti_utcsu::{Acu, Utcsu, UtcsuConfig};
use proptest::prelude::*;

fn running_chip(fosc: u64) -> Utcsu {
    let mut u = Utcsu::new(UtcsuConfig {
        fosc_hz: fosc,
        reliable_pin: false,
    });
    u.sync_run();
    u
}

proptest! {
    /// Clock time is strictly monotone over any advance while running and
    /// not amortizing backwards past a leap.
    #[test]
    fn clock_monotone(fosc in 1_000_000u64..=20_000_000, steps in proptest::collection::vec(1u64..1_000_000, 1..20)) {
        let mut u = running_chip(fosc);
        let mut tick = 0u128;
        let mut prev = u.time();
        for s in steps {
            tick += s as u128;
            u.advance_to_tick(tick);
            let now = u.time();
            prop_assert!(now.wrapping_diff_units(prev) > 0);
            prev = now;
        }
    }

    /// Advancing in one chunk equals advancing in many chunks (the adder is
    /// linear between boundaries).
    #[test]
    fn advance_is_linear(fosc in 1_000_000u64..=20_000_000, a in 1u64..500_000, b in 1u64..500_000) {
        let mut one = running_chip(fosc);
        one.advance_to_tick(a as u128 + b as u128);
        let mut two = running_chip(fosc);
        two.advance_to_tick(a as u128);
        two.advance_to_tick(a as u128 + b as u128);
        prop_assert_eq!(one.time(), two.time());
    }

    /// After an amortization of `k` ticks with augend `astep`, the total
    /// elapsed clock time equals k*astep + (n-k)*step exactly.
    #[test]
    fn amortization_arithmetic_exact(k in 1u64..100_000, extra in 0u64..100_000, delta in -20_000i64..20_000) {
        let fosc = 10_000_000u64;
        let base = Ltu::nominal_step_units(fosc);
        let astep = (base as i64 + delta).max(1) as u64;
        let mut u = running_chip(fosc);
        u.ltu.set_astep_units(astep);
        u.ltu.start_amortization(k as u128);
        u.advance_to_tick(k as u128 + extra as u128);
        let expect = (k as i128) * ((astep as i128) << 8) + (extra as i128) * ((base as i128) << 8);
        prop_assert_eq!(u.time().wrapping_diff_units(NtpTime::ZERO), expect);
    }

    /// A duty timer armed at a future time never fires early, and always
    /// fires within one tick past its target.
    #[test]
    fn timer_never_early(fosc in 1_000_000u64..=20_000_000, frac in 1u32..0x00FF_FFFF) {
        let mut u = running_chip(fosc);
        u.itu.set_mask(u32::MAX);
        u.arm_timer_regs(0, 0, frac);
        let target = u.timers[0].target();
        let fire = u.next_event_tick().expect("armed timer");
        if fire > 1 {
            u.advance_to_tick(fire - 1);
            prop_assert!(u.time().wrapping_diff_units(target) < 0, "early fire");
            prop_assert_eq!(u.itu.pending() & 1, 0);
        }
        u.advance_to_tick(fire);
        prop_assert!(u.itu.pending() & 1 != 0);
        let over = u.time().wrapping_diff_units(target);
        prop_assert!(over >= 0);
        // Overshoot bounded by one augend.
        prop_assert!((over as u128) <= ((u.ltu.step_units() as u128) << 8));
    }

    /// ACU deterioration never shrinks a cell with non-negative dstep, and
    /// the register value always over-covers the internal accumulator.
    #[test]
    fn acu_register_over_covers(init in 0u16..60_000, dstep in 0i64..(1i64 << 30), ticks in 0u64..1_000_000) {
        let mut a = Acu::new();
        a.load(Accuracy(init), Accuracy(init));
        a.set_dstep_minus(dstep);
        a.set_dstep_plus(dstep);
        a.advance(ticks as u128);
        let (m, p) = a.alpha();
        prop_assert!(m.0 >= init);
        prop_assert_eq!(m, p);
        // register (in 2^-24 s) * 2^35 >= internal accumulation
        let internal = (init as u128) << 35;
        let grown = internal + (dstep as u128) * (ticks as u128);
        prop_assert!(((m.0 as u128) << 35) >= grown.min((u16::MAX as u128) << 35));
    }

    /// Leap seconds and amortization interact safely: whatever the order
    /// of boundaries, total elapsed clock time is the tick-sum plus/minus
    /// exactly one second.
    #[test]
    fn leap_amortization_interaction(
        leap_sec in 1u32..3,
        amort_ticks in 1u64..2_000_000,
        delta in -20_000i64..20_000,
        insert in any::<bool>(),
        extra in 0u64..5_000_000,
    ) {
        let fosc = 10_000_000u64;
        let base = Ltu::nominal_step_units(fosc);
        let astep = (base as i64 + delta).max(1) as u64;
        let mut u = running_chip(fosc);
        u.ltu.set_astep_units(astep);
        u.ltu.start_amortization(amort_ticks as u128);
        let dir = if insert { nti_utcsu::LeapDir::Insert } else { nti_utcsu::LeapDir::Delete };
        u.ltu.arm_leap(leap_sec, dir);
        // Advance far enough to cross both boundaries.
        let total = amort_ticks as u128 + extra as u128 + 4 * fosc as u128;
        u.advance_to_tick(total);
        let expect_ticks = (amort_ticks as i128) * ((astep as i128) << 8)
            + ((total - amort_ticks as u128) as i128) * ((base as i128) << 8);
        let leap_units = 1i128 << 59;
        let expect = if insert { expect_ticks - leap_units } else { expect_ticks + leap_units };
        prop_assert_eq!(u.time().wrapping_diff_units(NtpTime::ZERO), expect);
        prop_assert!(u.ltu.leap().is_none(), "leap must have fired");
        prop_assert!(!u.ltu.amortizing());
    }

    /// The NTPA bus decodes to the chip's own state at any clock value.
    #[test]
    fn ntpa_bus_always_consistent(ticks in 0u64..200_000_000, am in any::<u16>(), ap in any::<u16>()) {
        let mut u = running_chip(10_000_000);
        u.acu.load(nti_simcore::Accuracy(am), nti_simcore::Accuracy(ap));
        u.advance_to_tick(ticks as u128);
        let (a, b) = u.ntpa_phases();
        let (t, dm, dp) = nti_utcsu::ntpa_decode(a, b).expect("fresh tap verifies");
        prop_assert_eq!(t.ntp56(), u.time().ntp56());
        prop_assert_eq!(dm.0, am);
        prop_assert_eq!(dp.0, ap);
    }

    /// Fuzzing the whole register window: any sequence of aligned reads
    /// and writes anywhere in the 512-byte window must never panic, and
    /// the clock must stay monotone while running.
    #[test]
    fn register_window_fuzz(
        ops in proptest::collection::vec((any::<bool>(), 0u32..0x80, any::<u32>()), 0..200),
        ticks in proptest::collection::vec(1u64..100_000, 0..20),
    ) {
        let mut u = running_chip(10_000_000);
        let mut prev = u.time();
        let mut tick = 0u128;
        let mut tick_iter = ticks.into_iter();
        for (is_write, reg, val) in ops {
            let off = reg * 4; // aligned within the 0x200 window
            if is_write {
                // Avoid stopping the clock or loading time backwards for
                // the monotonicity check: skip CTRL and the load trigger.
                if off != nti_utcsu::regs::R_CTRL {
                    u.write32(off, val);
                }
            } else {
                let _ = u.read32(off);
            }
            if let Some(t) = tick_iter.next() {
                tick += t as u128;
                u.advance_to_tick(tick);
                let now = u.time();
                prop_assert!(now.wrapping_diff_units(prev) >= 0, "clock ran backwards");
                prev = now;
            }
        }
    }

    /// Register sub-word writes compose to the same result as one 32-bit
    /// write for plain storage registers.
    #[test]
    fn subword_write_composition(v in any::<u32>()) {
        let mut a = running_chip(10_000_000);
        let mut b = running_chip(10_000_000);
        a.write32(nti_utcsu::regs::R_TLOAD_SECS, v);
        b.write16(nti_utcsu::regs::R_TLOAD_SECS, v as u16);
        b.write16(nti_utcsu::regs::R_TLOAD_SECS + 2, (v >> 16) as u16);
        prop_assert_eq!(a.read32(nti_utcsu::regs::R_TLOAD_SECS), b.read32(nti_utcsu::regs::R_TLOAD_SECS));
    }
}
