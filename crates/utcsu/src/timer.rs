//! Programmable duty timers.
//!
//! Whenever an armed duty timer goes off (local time reaches the programmed
//! value) an interrupt is raised (Section 3.3). Duty timers drive the whole
//! round structure of the synchronization algorithm: CSP broadcast at
//! `C(t) = kP`, convergence-function application at `kP + Δ`, amortization
//! control, leap-second scheduling, and application events.
//!
//! A timer compares the programmed 56-bit NTP target (staged as seconds +
//! 24-bit fraction) against local time; one-shot by design — software
//! re-arms it for the next round, as the pSOS⁺ᵐ add-on does.

use nti_simcore::ntp::{NtpTime, FRAC_BITS, NTP_FRAC_BITS};

/// Number of general-purpose duty timers in the model.
pub const NUM_TIMERS: usize = 3;

/// One duty timer.
#[derive(Clone, Copy, Debug, Default)]
pub struct DutyTimer {
    /// Staged target: integer seconds.
    pub target_secs: u32,
    /// Staged target: 24-bit fraction (in 2⁻²⁴ s units, low-aligned).
    pub target_frac24: u32,
    /// Whether the timer is armed.
    pub armed: bool,
}

impl DutyTimer {
    /// The staged target as an internal clock value.
    pub fn target(&self) -> NtpTime {
        let secs = self.target_secs as u128;
        let frac = (self.target_frac24 as u128 & 0x00FF_FFFF) << (FRAC_BITS - NTP_FRAC_BITS);
        NtpTime::from_raw((secs << FRAC_BITS) | frac)
    }

    /// Arm for the given target time.
    pub fn arm_at(&mut self, t: NtpTime) {
        self.target_secs = t.secs();
        self.target_frac24 = ((t.raw() >> (FRAC_BITS - NTP_FRAC_BITS)) & 0x00FF_FFFF) as u32;
        self.armed = true;
    }

    /// Disarm.
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// Whether the timer fires when the clock stands at `now` (target
    /// reached or passed). Expiry is detected by the advance loop, which
    /// segments ticks so it lands exactly on (or just past) the target.
    pub fn expired(&self, now: NtpTime) -> bool {
        self.armed && self.target().wrapping_diff_units(now) <= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_roundtrips_target() {
        let mut t = DutyTimer::default();
        let when = NtpTime::from_raw(
            (42u128 << FRAC_BITS) | (0x00AB_CDEF_u128 << (FRAC_BITS - NTP_FRAC_BITS)),
        );
        t.arm_at(when);
        assert!(t.armed);
        assert_eq!(t.target().secs(), 42);
        assert_eq!(t.target().ntp56(), when.ntp56());
    }

    #[test]
    fn expiry_semantics() {
        let mut t = DutyTimer::default();
        t.arm_at(NtpTime::from_secs(10));
        assert!(!t.expired(NtpTime::from_secs(9)));
        assert!(t.expired(NtpTime::from_secs(10)));
        assert!(t.expired(NtpTime::from_secs(11)));
        t.disarm();
        assert!(!t.expired(NtpTime::from_secs(11)));
    }

    #[test]
    fn disarmed_by_default() {
        let t = DutyTimer::default();
        assert!(!t.armed);
        assert!(!t.expired(NtpTime::from_secs(1_000_000)));
    }
}
