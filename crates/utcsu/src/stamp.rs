//! Time/accuracy-stamp latches: the common mechanism behind SSU, GPU and APU.
//!
//! A number of external events can be time/accuracy-stamped: local time and
//! the α⁻/α⁺ accuracies are *atomically* sampled into dedicated registers
//! upon the appropriate input transition (Section 3.3). Three functional
//! blocks use this mechanism:
//!
//! * [`Ssu`] — Synchronization Subnet Unit (×6): TRANSMIT and RECEIVE
//!   triggers from the NTI's decoding logic sample CSP timestamps; six
//!   independent units support redundant networks and gateway nodes;
//! * [`Gpu`] — GPS Unit (×3): timestamps the 1pps pulse of a GPS receiver;
//! * [`Apu`] — Application Unit (×9): general-purpose event timestamping.
//!
//! Because the inputs are asynchronous, a one- or two-stage synchronizer is
//! interposed (selected by the `reliable` pin), introducing a quantization
//! uncertainty of 1/f_osc (plus one more period of latency in reliable
//! mode). The latches track an *overrun* flag: a second trigger before the
//! previous stamp was consumed is the back-to-back CSP case of footnote 4.

use nti_simcore::ntp::NtpTime;
use nti_simcore::{Accuracy, Macrostamp, Timestamp};

/// One sampled time/accuracy stamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stamp {
    /// The 8.24 timestamp.
    pub ts: Timestamp,
    /// The matching macrostamp.
    pub ms: Macrostamp,
    /// α⁻ at sampling time.
    pub alpha_minus: Accuracy,
    /// α⁺ at sampling time.
    pub alpha_plus: Accuracy,
}

impl Stamp {
    /// Sample from the given clock state.
    pub fn sample(time: NtpTime, alpha: (Accuracy, Accuracy)) -> Stamp {
        Stamp {
            ts: time.timestamp(),
            ms: time.macrostamp(),
            alpha_minus: alpha.0,
            alpha_plus: alpha.1,
        }
    }

    /// The packed 32-bit accuracy register (α⁻ low, α⁺ high).
    pub fn acc_packed(&self) -> u32 {
        crate::acu::pack_alpha(self.alpha_minus, self.alpha_plus)
    }

    /// Reconstruct the full sampled clock value (checksum-verified).
    pub fn time(&self) -> Option<NtpTime> {
        NtpTime::from_stamp_pair(self.ts, self.ms)
    }
}

/// A stamp latch with valid/overrun status.
#[derive(Clone, Copy, Debug, Default)]
pub struct StampLatch {
    stamp: Option<Stamp>,
    overrun: bool,
}

impl StampLatch {
    /// Latch a new stamp; sets the overrun flag if the previous stamp was
    /// never consumed (it is overwritten, matching hardware behaviour).
    pub fn latch(&mut self, s: Stamp) {
        if self.stamp.is_some() {
            self.overrun = true;
        }
        self.stamp = Some(s);
    }

    /// Read and consume the stamp, clearing valid + overrun.
    pub fn take(&mut self) -> Option<Stamp> {
        self.overrun = false;
        self.stamp.take()
    }

    /// Peek without consuming (register reads of TS/MS/ACC peek; the status
    /// write clears).
    pub fn peek(&self) -> Option<Stamp> {
        self.stamp
    }

    /// Whether a stamp is pending.
    pub fn valid(&self) -> bool {
        self.stamp.is_some()
    }

    /// Whether a stamp was lost to a back-to-back trigger.
    pub fn overrun(&self) -> bool {
        self.overrun
    }

    /// Clear valid + overrun without reading (status register write).
    pub fn clear(&mut self) {
        self.stamp = None;
        self.overrun = false;
    }
}

/// Synchronization Subnet Unit: transmit + receive stamp latches.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ssu {
    /// Latch filled by the TRANSMIT trigger.
    pub transmit: StampLatch,
    /// Latch filled by the RECEIVE trigger.
    pub receive: StampLatch,
}

/// GPS Unit: 1pps stamp latch plus an enable/polarity control.
#[derive(Clone, Copy, Debug)]
pub struct Gpu {
    /// Latch filled on the (enabled) 1pps edge.
    pub pps: StampLatch,
    /// Whether the input is enabled.
    pub enabled: bool,
    /// `true` = stamp on rising edge, `false` = falling.
    pub rising: bool,
}

impl Default for Gpu {
    fn default() -> Self {
        Gpu {
            pps: StampLatch::default(),
            enabled: false,
            rising: true,
        }
    }
}

/// Application Unit: general-purpose event stamp latch.
#[derive(Clone, Copy, Debug)]
pub struct Apu {
    /// Latch filled on the (enabled) input edge.
    pub event: StampLatch,
    /// Whether the input is enabled.
    pub enabled: bool,
    /// `true` = stamp on rising edge, `false` = falling.
    pub rising: bool,
}

impl Default for Apu {
    fn default() -> Self {
        Apu {
            event: StampLatch::default(),
            enabled: false,
            rising: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_stamp(secs: u32) -> Stamp {
        Stamp::sample(NtpTime::from_secs(secs), (Accuracy(3), Accuracy(7)))
    }

    #[test]
    fn stamp_packs_accuracies() {
        let s = mk_stamp(1);
        assert_eq!(s.acc_packed(), (7 << 16) | 3);
    }

    #[test]
    fn stamp_time_roundtrip() {
        let t = NtpTime::from_secs(123_456);
        let s = Stamp::sample(t, (Accuracy::ZERO, Accuracy::ZERO));
        assert_eq!(s.time().expect("checksum ok").secs(), 123_456);
    }

    #[test]
    fn latch_take_clears() {
        let mut l = StampLatch::default();
        assert!(!l.valid());
        l.latch(mk_stamp(1));
        assert!(l.valid());
        assert!(!l.overrun());
        let s = l.take().unwrap();
        assert_eq!(s.time().unwrap().secs(), 1);
        assert!(!l.valid());
        assert!(l.take().is_none());
    }

    #[test]
    fn back_to_back_sets_overrun_and_keeps_newest() {
        let mut l = StampLatch::default();
        l.latch(mk_stamp(1));
        l.latch(mk_stamp(2));
        assert!(l.overrun());
        let s = l.take().unwrap();
        assert_eq!(s.time().unwrap().secs(), 2, "newest stamp wins");
        assert!(!l.overrun(), "take clears overrun");
    }

    #[test]
    fn clear_resets_everything() {
        let mut l = StampLatch::default();
        l.latch(mk_stamp(1));
        l.latch(mk_stamp(2));
        l.clear();
        assert!(!l.valid());
        assert!(!l.overrun());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut l = StampLatch::default();
        l.latch(mk_stamp(5));
        assert!(l.peek().is_some());
        assert!(l.valid());
        assert!(l.take().is_some());
    }

    #[test]
    fn gpu_apu_defaults() {
        let g = Gpu::default();
        assert!(!g.enabled && g.rising);
        let a = Apu::default();
        assert!(!a.enabled && a.rising);
    }
}
