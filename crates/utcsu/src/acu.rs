//! ACU — Accuracy Unit: the self-deteriorating accuracy interval cells.
//!
//! To support interval-based clock synchronization the UTCSU holds the local
//! accuracies α⁻ and α⁺ in two more adder-based "clocks" driven by the same
//! oscillator (Section 3.3). Between synchronization rounds the cells
//! **deteriorate automatically** at the programmed maximum drift rate so the
//! displayed interval `[C(t) − α⁻(t), C(t) + α⁺(t)]` keeps containing real
//! time without software involvement.
//!
//! Register format: 16-bit unsigned, unit 2⁻²⁴ s (≈ 59.6 ns). Internally a
//! cell carries 35 additional fractional bits (total 2⁻⁵⁹ s granularity, the
//! same as the LTU), so even sub-ppm deterioration rates accumulate exactly.
//! Two hardware quirks from the paper are modelled:
//!
//! * **wrap-around suppression** — a cell saturates at 0xFFFF instead of
//!   wrapping (an interval that big means resynchronization failed anyway);
//! * **zero-masking** — during continuous amortization a cell programmed
//!   with a negative deterioration (shrinking as the clock slews toward the
//!   corrected value) clamps at zero instead of going negative.

use nti_simcore::Accuracy;

/// Pack an accuracy pair into the 32-bit register layout (α⁻ in the low
/// half, α⁺ in the high half).
///
/// Both halves are masked explicitly: if the accuracy type ever grows past
/// 16 bits or goes signed, a plain `as u32` cast would sign-extend or smear
/// one half into the other; the masks make the register layout independent
/// of the Rust-side representation. Every packing site in the crate (ALPHA
/// reads, stamp ACC registers, the ALOAD staging path) goes through here.
pub fn pack_alpha(minus: Accuracy, plus: Accuracy) -> u32 {
    ((minus.0 as u32) & 0xFFFF) | (((plus.0 as u32) & 0xFFFF) << 16)
}

/// Inverse of [`pack_alpha`].
pub fn unpack_alpha(packed: u32) -> (Accuracy, Accuracy) {
    (
        Accuracy((packed & 0xFFFF) as u16),
        Accuracy((packed >> 16) as u16),
    )
}

/// Checked packing from raw register units (2⁻²⁴ s each): `None` when
/// either α exceeds the 16-bit register range instead of silently
/// truncating it to a *tighter* (unsafe) claimed bound.
pub fn try_pack_alpha_units(minus_units: u32, plus_units: u32) -> Option<u32> {
    if minus_units > 0xFFFF || plus_units > 0xFFFF {
        return None;
    }
    Some(pack_alpha(
        Accuracy(minus_units as u16),
        Accuracy(plus_units as u16),
    ))
}

/// Extra fractional bits carried internally below the 16-bit register.
pub const ACC_FRAC_BITS: u32 = 35;
/// Saturation value of the internal accumulator (0xFFFF in register units).
const ACC_SAT: u64 = ((u16::MAX as u64) << ACC_FRAC_BITS) | ((1 << ACC_FRAC_BITS) - 1);

/// One deteriorating accuracy cell.
#[derive(Clone, Copy, Debug)]
struct Cell {
    /// Internal value: 16.35 fixed point in units of 2⁻²⁴ s.
    acc: u64,
    /// Per-tick deterioration in 2⁻⁵⁹ s units (signed: negative shrinks
    /// during amortization, zero-masked at the bottom).
    dstep: i64,
}

impl Cell {
    fn advance(&mut self, n: u128) {
        if self.dstep == 0 || n == 0 {
            return;
        }
        let delta = (self.dstep as i128) * (n as i128);
        let v = self.acc as i128 + delta;
        self.acc = v.clamp(0, ACC_SAT as i128) as u64;
    }

    fn register(&self) -> u16 {
        // Round UP: the register must never claim a tighter bound than the
        // internally accumulated deterioration (containment safety).
        let ceil = (self.acc + ((1 << ACC_FRAC_BITS) - 1)) >> ACC_FRAC_BITS;
        ceil.min(u16::MAX as u64) as u16
    }

    fn load(&mut self, reg: u16) {
        self.acc = (reg as u64) << ACC_FRAC_BITS;
    }
}

/// The accuracy unit: the α⁻ and α⁺ cells.
#[derive(Clone, Debug)]
pub struct Acu {
    minus: Cell,
    plus: Cell,
}

impl Default for Acu {
    fn default() -> Self {
        Self::new()
    }
}

impl Acu {
    /// Both cells zero, no deterioration programmed.
    pub fn new() -> Self {
        Acu {
            minus: Cell { acc: 0, dstep: 0 },
            plus: Cell { acc: 0, dstep: 0 },
        }
    }

    /// Apply `n` oscillator ticks of deterioration.
    pub fn advance(&mut self, n: u128) {
        self.minus.advance(n);
        self.plus.advance(n);
    }

    /// Current (α⁻, α⁺) register values.
    pub fn alpha(&self) -> (Accuracy, Accuracy) {
        (
            Accuracy(self.minus.register()),
            Accuracy(self.plus.register()),
        )
    }

    /// The packed 32-bit ALPHA register: α⁻ in the low half, α⁺ in the high.
    pub fn alpha_packed(&self) -> u32 {
        pack_alpha(
            Accuracy(self.minus.register()),
            Accuracy(self.plus.register()),
        )
    }

    /// Load both cells atomically (performed together with the LTU time
    /// load so interval and clock stay consistent).
    pub fn load(&mut self, minus: Accuracy, plus: Accuracy) {
        self.minus.load(minus.0);
        self.plus.load(plus.0);
    }

    /// Load from the packed 32-bit staging register.
    pub fn load_packed(&mut self, packed: u32) {
        let (minus, plus) = unpack_alpha(packed);
        self.minus.load(minus.0);
        self.plus.load(plus.0);
    }

    /// Program the per-tick deterioration of the α⁻ cell, in 2⁻⁵⁹ s units.
    pub fn set_dstep_minus(&mut self, units: i64) {
        self.minus.dstep = units;
    }

    /// Program the per-tick deterioration of the α⁺ cell, in 2⁻⁵⁹ s units.
    pub fn set_dstep_plus(&mut self, units: i64) {
        self.plus.dstep = units;
    }

    /// Current per-tick deteriorations.
    pub fn dsteps(&self) -> (i64, i64) {
        (self.minus.dstep, self.plus.dstep)
    }

    /// The per-tick deterioration (in 2⁻⁵⁹ s units) that covers a drift
    /// bound of `rho_max_ppm` on an oscillator of `fosc_hz`, rounded **up**
    /// so the cell always over-covers true drift.
    pub fn dstep_for_drift(fosc_hz: u64, rho_max_ppm: f64) -> i64 {
        // per-tick deterioration = rho_max seconds per second / fosc ticks
        // per second, expressed in 2^-59 s units.
        let per_tick = rho_max_ppm * 1e-6 / fosc_hz as f64;
        (per_tick * (1u128 << 59) as f64).ceil() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_start_at_zero() {
        let a = Acu::new();
        assert_eq!(a.alpha(), (Accuracy::ZERO, Accuracy::ZERO));
        assert_eq!(a.alpha_packed(), 0);
    }

    #[test]
    fn deterioration_accumulates_sub_register_amounts() {
        let fosc = 10_000_000u64;
        let mut a = Acu::new();
        // 10 ppm drift bound: deteriorate 10 us/s.
        let d = Acu::dstep_for_drift(fosc, 10.0);
        a.set_dstep_minus(d);
        a.set_dstep_plus(d);
        // After one second of ticks: ~10 us = ~168 register units.
        a.advance(fosc as u128);
        let (m, p) = a.alpha();
        let secs = m.as_secs_f64();
        assert!((secs - 10e-6).abs() < 0.2e-6, "alpha- = {secs}");
        assert_eq!(m, p);
    }

    #[test]
    fn dstep_rounds_up_to_over_cover() {
        // Even an extremely small drift bound must produce a nonzero dstep.
        let d = Acu::dstep_for_drift(20_000_000, 0.000_001);
        assert!(d >= 1);
    }

    #[test]
    fn saturation_instead_of_wraparound() {
        let mut a = Acu::new();
        a.load(Accuracy(u16::MAX - 1), Accuracy::ZERO);
        a.set_dstep_minus(i64::MAX / 2);
        a.advance(1_000);
        assert_eq!(a.alpha().0, Accuracy::MAX, "must saturate, not wrap");
    }

    #[test]
    fn zero_masking_of_negative_accuracy() {
        let mut a = Acu::new();
        a.load(Accuracy(10), Accuracy(10));
        // Shrinking during amortization: negative dstep; must clamp at 0.
        a.set_dstep_plus(-(1i64 << 40));
        a.advance(1_000_000);
        assert_eq!(a.alpha().1, Accuracy::ZERO);
        assert_eq!(a.alpha().0, Accuracy(10), "other cell untouched");
    }

    #[test]
    fn packed_load_and_read_roundtrip() {
        let mut a = Acu::new();
        a.load_packed(0xBEEF_1234);
        assert_eq!(a.alpha(), (Accuracy(0x1234), Accuracy(0xBEEF)));
        assert_eq!(a.alpha_packed(), 0xBEEF_1234);
    }

    #[test]
    fn advance_zero_ticks_is_noop() {
        let mut a = Acu::new();
        a.load(Accuracy(5), Accuracy(7));
        a.set_dstep_minus(1 << 30);
        a.advance(0);
        assert_eq!(a.alpha(), (Accuracy(5), Accuracy(7)));
    }

    #[test]
    fn deterioration_matches_drift_bound_rate() {
        // dstep_for_drift at 1 ppm on 16 MHz: after 16M ticks (1 s) the cell
        // must have grown by at least 1 us and no more than ~1.2 us.
        let fosc = 16_000_000u64;
        let mut a = Acu::new();
        a.set_dstep_plus(Acu::dstep_for_drift(fosc, 1.0));
        a.advance(fosc as u128);
        let grown = a.alpha().1.as_secs_f64();
        assert!(grown >= 1.0e-6, "grown={grown}");
        assert!(grown <= 1.3e-6, "grown={grown}");
    }
}
