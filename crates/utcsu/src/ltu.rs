//! LTU — Local Time Unit: the adder-based clock.
//!
//! The centerpiece of the UTCSU (Section 3.3): instead of a simple counter,
//! a large high-speed adder sums the elapsed time between successive
//! oscillator ticks. Local time is a 91-bit fixed-point value (32 integer +
//! 59 fractional bits); the **STEP** augend is programmed in multiples of
//! 2⁻⁵¹ s ≈ 0.44 fs, which makes the clock fine-grained *rate adjustable*:
//! at f_osc = 10 MHz one STEP unit changes the clock rate by
//! 10⁷ · 2⁻⁵¹ ≈ 4.4 ns/s (the paper's "steps of about 10 ns/s").
//!
//! State adjustment is performed by **continuous amortization**: for a
//! programmed number of ticks the adder uses the alternative augend ASTEP,
//! slewing the clock monotonically instead of stepping it. Leap-second
//! insertion/deletion is armed for a target second boundary and applied in
//! hardware.
//!
//! The model is *tick-domain*: `advance(n)` applies `n` oscillator ticks.
//! Crossing an amortization end or an armed leap boundary must be handled by
//! the caller segmenting the advance (see `Utcsu::advance_to_tick`), which
//! asks the LTU for the distance to its next boundary first.

use nti_simcore::ntp::{NtpTime, STEP_UNIT_SHIFT, UNITS_PER_SEC};

/// Leap second direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeapDir {
    /// Insert a leap second: the clock repeats a second (jumps back by 1 s
    /// when the armed boundary is reached).
    Insert,
    /// Delete a leap second: the clock skips a second (jumps forward).
    Delete,
}

/// Events produced when an advance crosses an LTU boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LtuEvent {
    /// Continuous amortization completed; the clock reverted to STEP.
    AmortizationEnd,
    /// The armed leap second was applied.
    LeapApplied(LeapDir),
}

/// The maximum programmable STEP value: 40 bits of 2⁻⁵¹ s units
/// (≈ 0.49 ms per tick — far beyond any sane oscillator).
pub const STEP_MAX: u64 = (1 << 40) - 1;

/// The adder-based clock.
#[derive(Clone, Debug)]
pub struct Ltu {
    /// Current local time (91-bit internal representation).
    time: NtpTime,
    /// Normal augend, in 2⁻⁵¹ s units.
    step_units: u64,
    /// Amortization augend, in 2⁻⁵¹ s units.
    astep_units: u64,
    /// Remaining amortization ticks (0 = not amortizing).
    amort_ticks_left: u128,
    /// Whether the clock is running (SYNCRUN gates this).
    running: bool,
    /// Armed leap second: target second boundary + direction.
    leap: Option<(u32, LeapDir)>,
    /// Macrostamp latched on TIMESTAMP read for a torn-read-free pair.
    latched_macro: u32,
}

impl Ltu {
    /// A stopped clock at time zero with the given initial STEP.
    pub fn new(step_units: u64) -> Self {
        assert!(step_units <= STEP_MAX, "STEP exceeds 40 bits");
        Ltu {
            time: NtpTime::ZERO,
            step_units,
            astep_units: step_units,
            amort_ticks_left: 0,
            running: false,
            leap: None,
            latched_macro: 0,
        }
    }

    /// The nominal STEP value for an oscillator of `fosc_hz`: the closest
    /// 2⁻⁵¹ s multiple to one nominal period. (The clock-rate algorithm
    /// later trims this to compensate measured drift.)
    pub fn nominal_step_units(fosc_hz: u64) -> u64 {
        // step = 2^51 / fosc, rounded to nearest.
        (((1u128 << 51) + (fosc_hz as u128 / 2)) / fosc_hz as u128) as u64
    }

    /// Current internal time.
    pub fn time(&self) -> NtpTime {
        self.time
    }

    /// Whether the clock is running.
    pub fn running(&self) -> bool {
        self.running
    }

    /// Start/stop the clock.
    pub fn set_running(&mut self, on: bool) {
        self.running = on;
    }

    /// Current STEP in 2⁻⁵¹ s units.
    pub fn step_units(&self) -> u64 {
        self.step_units
    }

    /// Program STEP (the rate-synchronization algorithm's knob).
    pub fn set_step_units(&mut self, units: u64) {
        self.step_units = units.min(STEP_MAX);
    }

    /// Program ASTEP, the augend used while amortizing.
    pub fn set_astep_units(&mut self, units: u64) {
        self.astep_units = units.min(STEP_MAX);
    }

    /// Current ASTEP in 2⁻⁵¹ s units.
    pub fn astep_units(&self) -> u64 {
        self.astep_units
    }

    /// Begin continuous amortization for `ticks` oscillator ticks.
    pub fn start_amortization(&mut self, ticks: u128) {
        self.amort_ticks_left = ticks;
    }

    /// Abort any running amortization (reverts to STEP immediately).
    pub fn abort_amortization(&mut self) {
        self.amort_ticks_left = 0;
    }

    /// Whether the clock is currently amortizing.
    pub fn amortizing(&self) -> bool {
        self.amort_ticks_left > 0
    }

    /// Remaining amortization ticks.
    pub fn amort_ticks_left(&self) -> u128 {
        self.amort_ticks_left
    }

    /// Arm a leap second at the given target second boundary.
    pub fn arm_leap(&mut self, target_sec: u32, dir: LeapDir) {
        self.leap = Some((target_sec, dir));
    }

    /// Disarm any pending leap second.
    pub fn disarm_leap(&mut self) {
        self.leap = None;
    }

    /// The currently armed leap, if any.
    pub fn leap(&self) -> Option<(u32, LeapDir)> {
        self.leap
    }

    /// Set the time directly (the staged atomic load applied by CTRL; also
    /// used by SYNCRUN).
    pub fn load_time(&mut self, t: NtpTime) {
        self.time = t;
    }

    /// The augend currently in effect, in internal 2⁻⁵⁹ units.
    fn augend_units59(&self) -> u128 {
        let u = if self.amort_ticks_left > 0 {
            self.astep_units
        } else {
            self.step_units
        };
        (u as u128) << STEP_UNIT_SHIFT
    }

    /// Number of ticks until the next LTU-internal boundary (amortization
    /// end or leap boundary), if any, assuming the current augend stays in
    /// effect. `None` means no boundary ahead.
    pub fn ticks_to_boundary(&self) -> Option<u128> {
        if !self.running {
            return None;
        }
        let mut next: Option<u128> = None;
        if self.amort_ticks_left > 0 {
            next = Some(self.amort_ticks_left);
        }
        if let Some((sec, _)) = self.leap {
            let target = NtpTime::from_secs(sec);
            let diff = target.wrapping_diff_units(self.time);
            let aug = self.augend_units59();
            if aug > 0 {
                let ticks = if diff <= 0 {
                    1 // already past: apply at the next tick
                } else {
                    (diff as u128).div_ceil(aug)
                };
                next = Some(next.map_or(ticks, |n| n.min(ticks)));
            }
        }
        next
    }

    /// Number of ticks until local time reaches `target` (for duty timers),
    /// assuming the current augend stays in effect. Returns 0 if the target
    /// is now or in the past (within the wrap interpretation).
    pub fn ticks_until(&self, target: NtpTime) -> u128 {
        let diff = target.wrapping_diff_units(self.time);
        if diff <= 0 {
            return 0;
        }
        let aug = self.augend_units59();
        if aug == 0 {
            return u128::MAX;
        }
        (diff as u128).div_ceil(aug)
    }

    /// Apply `n` oscillator ticks. The caller must have segmented the
    /// advance so that no boundary lies strictly inside `n`; crossing the
    /// amortization end or the leap boundary exactly at the end is fine and
    /// reported as events.
    pub fn advance(&mut self, n: u128) -> Vec<LtuEvent> {
        let mut events = Vec::new();
        if !self.running || n == 0 {
            return events;
        }
        debug_assert!(
            self.amort_ticks_left == 0 || n <= self.amort_ticks_left,
            "advance crosses amortization end"
        );
        let aug = self.augend_units59();
        let before = self.time;
        self.time = self.time.wrapping_add_units((aug * n) as i128);
        if self.amort_ticks_left > 0 {
            self.amort_ticks_left -= n;
            if self.amort_ticks_left == 0 {
                events.push(LtuEvent::AmortizationEnd);
            }
        }
        if let Some((sec, dir)) = self.leap {
            let target = NtpTime::from_secs(sec);
            // Crossed if target was ahead of `before` and is no longer ahead.
            let was_ahead = target.wrapping_diff_units(before) > 0;
            let now_ahead = target.wrapping_diff_units(self.time) > 0;
            if was_ahead && !now_ahead {
                let delta = match dir {
                    LeapDir::Insert => -(UNITS_PER_SEC as i128),
                    LeapDir::Delete => UNITS_PER_SEC as i128,
                };
                self.time = self.time.wrapping_add_units(delta);
                self.leap = None;
                events.push(LtuEvent::LeapApplied(dir));
            }
        }
        events
    }

    /// BIU read of the TIMESTAMP register: returns the 8.24 timestamp and
    /// latches the matching macrostamp so the subsequent MACROSTAMP read is
    /// consistent (no torn read across a second boundary).
    pub fn read_timestamp(&mut self) -> u32 {
        self.latched_macro = self.time.macrostamp().0;
        self.time.timestamp().0
    }

    /// BIU read of the MACROSTAMP register (the value latched at the last
    /// TIMESTAMP read).
    pub fn read_macrostamp(&self) -> u32 {
        self.latched_macro
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nti_simcore::ntp::FRAC_BITS;

    fn running_ltu(fosc: u64) -> Ltu {
        let mut l = Ltu::new(Ltu::nominal_step_units(fosc));
        l.set_running(true);
        l
    }

    #[test]
    fn nominal_step_is_one_period() {
        // 10 MHz: step = 2^51/1e7 units of 2^-51 s = 100 ns.
        let step = Ltu::nominal_step_units(10_000_000);
        let secs_per_tick = step as f64 / (1u64 << 51) as f64;
        assert!((secs_per_tick - 1e-7).abs() < 1e-15);
    }

    #[test]
    fn advancing_one_second_of_ticks() {
        let mut l = running_ltu(10_000_000);
        l.advance(10_000_000);
        let err = l.time().diff_secs_f64(NtpTime::from_secs(1));
        // Rounding of the step to 2^-51 s accumulates < 10M * 2^-52 s ~ 2.2 us.
        assert!(err.abs() < 3e-6, "err={err}");
    }

    #[test]
    fn stopped_clock_does_not_advance() {
        let mut l = Ltu::new(Ltu::nominal_step_units(10_000_000));
        assert!(!l.running());
        l.advance(1_000_000);
        assert_eq!(l.time(), NtpTime::ZERO);
    }

    #[test]
    fn rate_adjustment_granularity() {
        // One STEP unit at 10 MHz changes the rate by fosc * 2^-51 s/s.
        let fosc = 10_000_000u64;
        let base = Ltu::nominal_step_units(fosc);
        let mut a = running_ltu(fosc);
        let mut b = running_ltu(fosc);
        b.set_step_units(base + 1);
        a.advance(fosc as u128); // one nominal second
        b.advance(fosc as u128);
        let diff = b.time().diff_secs_f64(a.time());
        let expect = fosc as f64 * (1.0 / (1u64 << 51) as f64);
        assert!((diff - expect).abs() < 1e-12, "diff={diff} expect={expect}");
        // ~4.44 ns/s at 10 MHz -- the paper's "about 10 ns/s" knob.
        assert!(expect > 3e-9 && expect < 1e-8);
    }

    #[test]
    fn amortization_slews_then_reverts() {
        let fosc = 10_000_000u64;
        let base = Ltu::nominal_step_units(fosc);
        let mut l = running_ltu(fosc);
        // Slew +10 us over 1_000_000 ticks (0.1 s): astep = base + delta.
        let delta_units = ((10_000_000_000u128 /* 10us in fs */ << 51)
            / 1_000_000_000_000_000u128
            / 1_000_000u128) as u64;
        l.set_astep_units(base + delta_units);
        l.start_amortization(1_000_000);
        assert!(l.amortizing());
        let ev = l.advance(1_000_000);
        assert_eq!(ev, vec![LtuEvent::AmortizationEnd]);
        assert!(!l.amortizing());
        let t_amort = l.time();
        // Against a non-amortized twin:
        let mut plain = running_ltu(fosc);
        plain.advance(1_000_000);
        let gained = t_amort.diff_secs_f64(plain.time());
        assert!((gained - 10e-6).abs() < 0.5e-6, "gained={gained}");
        // After amortization the rate reverts to STEP.
        let before = l.time();
        l.advance(1);
        let per_tick = l.time().diff_secs_f64(before);
        assert!((per_tick - 1e-7).abs() < 1e-12);
    }

    #[test]
    fn ticks_to_boundary_tracks_amortization() {
        let mut l = running_ltu(10_000_000);
        assert_eq!(l.ticks_to_boundary(), None);
        l.start_amortization(500);
        assert_eq!(l.ticks_to_boundary(), Some(500));
        l.advance(200);
        assert_eq!(l.ticks_to_boundary(), Some(300));
    }

    #[test]
    fn ticks_until_target() {
        let mut l = running_ltu(10_000_000);
        let target = NtpTime::from_secs(1);
        let n = l.ticks_until(target);
        // 1 s at ~100 ns/tick: ~10M ticks (exact value depends on rounding).
        assert!((9_999_000..=10_001_000).contains(&n), "n={n}");
        l.advance(n);
        assert!(l.time().wrapping_diff_units(target) >= 0);
        assert_eq!(l.ticks_until(target), 0);
    }

    #[test]
    fn leap_insert_jumps_back() {
        let mut l = running_ltu(10_000_000);
        l.arm_leap(1, LeapDir::Insert);
        let n = l.ticks_until(NtpTime::from_secs(1));
        // Advance in two segments honouring the boundary.
        let b = l.ticks_to_boundary().expect("leap boundary pending");
        assert!(b >= n && b <= n + 1, "b={b} n={n}");
        let ev = l.advance(b);
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0], LtuEvent::LeapApplied(LeapDir::Insert)));
        // Time jumped back by one second: now just past second 0.
        assert_eq!(l.time().secs(), 0);
        assert!(l.leap().is_none());
    }

    #[test]
    fn leap_delete_jumps_forward() {
        let mut l = running_ltu(10_000_000);
        l.arm_leap(1, LeapDir::Delete);
        let b = l.ticks_to_boundary().unwrap();
        let ev = l.advance(b);
        assert!(matches!(ev[0], LtuEvent::LeapApplied(LeapDir::Delete)));
        assert_eq!(l.time().secs(), 2);
    }

    #[test]
    fn timestamp_macrostamp_pair_is_consistent() {
        let mut l = running_ltu(10_000_000);
        // Move just below a 256 s boundary so the halves would tear.
        l.load_time(NtpTime::from_raw((256u128 << FRAC_BITS) - 1));
        let ts = l.read_timestamp();
        // Clock advances past the boundary before the macrostamp read.
        l.advance(100);
        let ms = l.read_macrostamp();
        let pair =
            NtpTime::from_stamp_pair(nti_simcore::Timestamp(ts), nti_simcore::Macrostamp(ms));
        assert!(pair.is_some(), "latched pair must verify");
        assert_eq!(pair.unwrap().secs(), 255);
    }

    #[test]
    fn step_saturates_at_40_bits() {
        let mut l = Ltu::new(0);
        l.set_step_units(u64::MAX);
        assert_eq!(l.step_units(), STEP_MAX);
    }

    #[test]
    #[should_panic(expected = "STEP exceeds 40 bits")]
    fn new_rejects_oversized_step() {
        let _ = Ltu::new(1 << 40);
    }
}
