#![warn(missing_docs)]

//! Functional simulation of the **UTCSU** — the Universal Time Coordinated
//! Synchronization Unit ASIC at the heart of the NTI M-Module.
//!
//! The real chip (0.7 µm CMOS, ≈65 000 gates, 180-pin PGA) contains, per
//! Section 3.3 of the paper and Figure 5:
//!
//! | unit | role | module |
//! |------|------|--------|
//! | LTU  | adder-based local clock (91-bit adder, NTP format) | [`ltu`] |
//! | ACU  | self-deteriorating accuracy cells α⁻/α⁺ | [`acu`] |
//! | SSU ×6 | CSP transmit/receive time/accuracy stamps | [`stamp`] |
//! | GPU ×3 | GPS 1pps time/accuracy stamps | [`stamp`] |
//! | APU ×9 | application time/accuracy stamps | [`stamp`] |
//! | duty timers | round scheduling, amortization, leap, app events | [`timer`] |
//! | ITU  | interrupt mapping to INTN/INTT/INTA | [`itu`] |
//! | BTU  | checksums/blocksums/signatures (self-test) | [`btu`] |
//! | SNU  | HWSNAP snapshots + SYNCRUN start | [`snu`] |
//! | BIU  | bus interface (register file) | [`regs`] |
//!
//! # Tick-domain model
//!
//! The chip is driven by oscillator ticks, not wall-clock time: the owner
//! (a simulated node) maps real time to tick counts through its oscillator
//! model and calls [`Utcsu::advance_to_tick`] *before* any register access
//! or trigger, so the chip state is always current. Advancing is O(1) per
//! internal boundary (duty-timer expiry, amortization end, leap boundary) —
//! the 91-bit adder is applied in bulk, which is exact because the augend is
//! constant between boundaries.

pub mod acu;
pub mod btu;
pub mod itu;
pub mod ltu;
pub mod regs;
pub mod snu;
pub mod stamp;
pub mod timer;

pub use acu::Acu;
pub use btu::Btu;
pub use itu::{IntLines, IntSource, Itu};
pub use ltu::{LeapDir, Ltu, LtuEvent};
pub use snu::Snu;
pub use stamp::{Apu, Gpu, Ssu, Stamp, StampLatch};
pub use timer::{DutyTimer, NUM_TIMERS};

use nti_obs::{Counter, Histogram, MetricKey, Payload, SimObserver, SpanId, Subsystem};
use nti_simcore::ntp::{NtpTime, FRAC_BITS, NTP_FRAC_BITS};
use nti_simcore::Accuracy;
use std::sync::Arc;

/// Number of Synchronization Subnet Units (redundant networks/gateways).
pub const NUM_SSU: usize = 6;
/// Number of GPS units.
pub const NUM_GPU: usize = 3;
/// Number of application units.
pub const NUM_APU: usize = 9;

/// Static configuration of a UTCSU instance.
#[derive(Clone, Copy, Debug)]
pub struct UtcsuConfig {
    /// Oscillator frequency the chip is paced with (1…20 MHz per the
    /// datasheet; checked).
    pub fosc_hz: u64,
    /// State of the `reliable` pin: `true` selects two-stage synchronizers
    /// on the asynchronous stamp inputs (extra tick of latency, smaller
    /// metastability probability).
    pub reliable_pin: bool,
}

impl Default for UtcsuConfig {
    fn default() -> Self {
        UtcsuConfig {
            fosc_hz: 10_000_000,
            reliable_pin: false,
        }
    }
}

/// Pre-resolved observability handles, populated by
/// [`Utcsu::attach_observer`]. The chip runs in the tick domain, so trace
/// timestamps use *nominal* local time (tick / f_osc) rather than simulated
/// real time.
#[derive(Clone, Debug)]
struct UtcsuObs {
    obs: SimObserver,
    node: u32,
    /// All external triggers (SSU/GPU/APU/HWSNAP) that latched a stamp.
    triggers: Arc<Counter>,
    /// Synchronizer latency of each trigger sample (nanoseconds).
    trigger_latency_ns: Arc<Histogram>,
    /// Continuous amortization phases started.
    amort_starts: Arc<Counter>,
    /// Length of each amortization phase (ticks).
    amort_ticks: Arc<Histogram>,
}

/// The simulated UTCSU ASIC.
#[derive(Clone, Debug)]
pub struct Utcsu {
    cfg: UtcsuConfig,
    /// Oscillator ticks applied so far.
    tick: u128,
    /// Local Time Unit.
    pub ltu: Ltu,
    /// Accuracy Unit.
    pub acu: Acu,
    /// Synchronization Subnet Units.
    pub ssu: [Ssu; NUM_SSU],
    /// GPS Units.
    pub gpu: [Gpu; NUM_GPU],
    /// Application Units.
    pub apu: [Apu; NUM_APU],
    /// Duty timers.
    pub timers: [DutyTimer; NUM_TIMERS],
    /// Interrupt Unit.
    pub itu: Itu,
    /// Built-In Test Unit.
    pub btu: Btu,
    /// Snapshot Unit.
    pub snu: Snu,
    // --- staged registers (BIU) ---
    tload_secs: u32,
    tload_frac24: u32,
    aload_packed: u32,
    amort_lo: u32,
    amort_hi: u32,
    leap_secs: u32,
    obs: Option<UtcsuObs>,
    /// Causal-span context staged by the driver for the next trigger:
    /// `(parent span, engine-time fs of the trigger)`. Consumed by
    /// [`Utcsu::obs_trigger`], which emits the `latch` span and parks its
    /// id here for [`Utcsu::take_latch_span`].
    span_ctx: Option<(SpanId, u128)>,
    latch_span: SpanId,
}

impl Utcsu {
    /// Instantiate a chip. Panics on an out-of-range oscillator frequency.
    pub fn new(cfg: UtcsuConfig) -> Self {
        assert!(
            (1_000_000..=20_000_000).contains(&cfg.fosc_hz),
            "UTCSU oscillator range is 1..=20 MHz, got {} Hz",
            cfg.fosc_hz
        );
        let ltu = Ltu::new(Ltu::nominal_step_units(cfg.fosc_hz));
        Utcsu {
            cfg,
            tick: 0,
            ltu,
            acu: Acu::new(),
            ssu: Default::default(),
            gpu: Default::default(),
            apu: Default::default(),
            timers: Default::default(),
            itu: Itu::new(),
            btu: Btu::new(),
            snu: Snu::new(),
            tload_secs: 0,
            tload_frac24: 0,
            aload_packed: 0,
            amort_lo: 0,
            amort_hi: 0,
            leap_secs: 0,
            obs: None,
            span_ctx: None,
            latch_span: SpanId::NONE,
        }
    }

    /// Attach an observer; metrics are registered under node `node`,
    /// subsystem `utcsu`. With a disabled observer this detaches (every
    /// instrumentation site reduces to one `Option` branch).
    pub fn attach_observer(&mut self, obs: &SimObserver, node: u32) {
        self.obs = if obs.is_enabled() {
            let key = |name| MetricKey::node(node, "utcsu", name);
            Some(UtcsuObs {
                obs: obs.clone(),
                node,
                triggers: obs.counter(key("triggers")).expect("enabled"),
                trigger_latency_ns: obs.hist(key("trigger_latency_ns")).expect("enabled"),
                amort_starts: obs.counter(key("amort_starts")).expect("enabled"),
                amort_ticks: obs.hist(key("amort_ticks")).expect("enabled"),
            })
        } else {
            None
        };
    }

    /// Nominal local time in femtoseconds (tick / f_osc) — the timestamp
    /// base for this chip's trace events.
    fn nominal_fs(&self) -> u128 {
        self.tick * 1_000_000_000_000_000u128 / self.cfg.fosc_hz as u128
    }

    /// Record one trigger sample: count it, record the synchronizer latency
    /// and emit a trace instant when the `utcsu` subsystem is traced. When
    /// the driver staged a causal-span context ([`Utcsu::stage_trigger_span`])
    /// the synchronizer latency additionally becomes a `latch` span linked
    /// under the staged parent, timestamped in **engine** time (the staged
    /// instant plus the synchronizer recovery) so it telescopes with the
    /// surrounding hops.
    fn obs_trigger(&mut self, kind: &'static str) {
        let ctx = self.span_ctx.take();
        if let Some(o) = &self.obs {
            o.triggers.inc();
            let latency_ns = self.stamp_delay_ticks() as u64 * 1_000_000_000 / self.cfg.fosc_hz;
            o.trigger_latency_ns.record(latency_ns);
            o.obs
                .instant(self.nominal_fs(), o.node, Subsystem::Utcsu, kind);
            if let Some((parent, real_fs)) = ctx {
                let latency_fs =
                    self.stamp_delay_ticks() * 1_000_000_000_000_000u128 / self.cfg.fosc_hz as u128;
                let span = o.obs.new_span();
                o.obs.span_link(
                    real_fs + latency_fs,
                    latency_fs,
                    o.node,
                    Subsystem::Utcsu,
                    "latch",
                    span,
                    parent,
                );
                self.latch_span = span;
            }
        }
    }

    /// Stage the causal-span context for the next external trigger:
    /// `parent` is the span of the event that raises the trigger line
    /// (e.g. the RECEIVE header write) and `real_fs` the engine time at
    /// which it does. The next [`Utcsu::obs_trigger`] turns the
    /// synchronizer latency into a parent-linked `latch` span; fetch its
    /// id with [`Utcsu::take_latch_span`]. No-op state when no observer
    /// is attached (callers guard on a non-null `parent`).
    pub fn stage_trigger_span(&mut self, parent: SpanId, real_fs: u128) {
        if parent.is_some() && self.obs.is_some() {
            self.span_ctx = Some((parent, real_fs));
        }
    }

    /// Take the span id of the most recent staged-and-latched trigger
    /// (see [`Utcsu::stage_trigger_span`]), resetting it to
    /// [`SpanId::NONE`].
    pub fn take_latch_span(&mut self) -> SpanId {
        std::mem::take(&mut self.latch_span)
    }

    /// The static configuration.
    pub fn config(&self) -> UtcsuConfig {
        self.cfg
    }

    /// Ticks applied so far.
    pub fn tick(&self) -> u128 {
        self.tick
    }

    /// Synchronizer latency (in ticks) of the asynchronous stamp inputs:
    /// 1 (reliable pin low) or 2 (high). The sampling uncertainty is one
    /// oscillator period either way; the recovery time for metastability is
    /// `stages / f_osc`.
    pub fn stamp_delay_ticks(&self) -> u128 {
        if self.cfg.reliable_pin {
            2
        } else {
            1
        }
    }

    /// Current local clock value (internal 91-bit representation).
    pub fn time(&self) -> NtpTime {
        self.ltu.time()
    }

    /// Current accuracy cells (α⁻, α⁺).
    pub fn alpha(&self) -> (Accuracy, Accuracy) {
        self.acu.alpha()
    }

    /// The staged time-load value as an internal clock value.
    fn staged_time(&self) -> NtpTime {
        let secs = self.tload_secs as u128;
        let frac = (self.tload_frac24 as u128 & 0x00FF_FFFF) << (FRAC_BITS - NTP_FRAC_BITS);
        NtpTime::from_raw((secs << FRAC_BITS) | frac)
    }

    /// Stage a time value for the next atomic load (convenience over the
    /// two registers).
    pub fn stage_time_load(&mut self, t: NtpTime) {
        self.tload_secs = t.secs();
        self.tload_frac24 = ((t.raw() >> (FRAC_BITS - NTP_FRAC_BITS)) & 0x00FF_FFFF) as u32;
    }

    /// Stage accuracies for the next atomic load.
    pub fn stage_acc_load(&mut self, minus: Accuracy, plus: Accuracy) {
        self.aload_packed = acu::pack_alpha(minus, plus);
    }

    /// Stage accuracies from raw register units (2⁻²⁴ s each), rejecting
    /// out-of-range values: an α wider than the 16-bit register cannot be
    /// represented, and truncating it would *understate* the interval (a
    /// containment violation), so the write is refused and the previously
    /// staged value stands. Returns whether the stage was accepted.
    pub fn stage_acc_load_units(&mut self, minus_units: u32, plus_units: u32) -> bool {
        match acu::try_pack_alpha_units(minus_units, plus_units) {
            Some(packed) => {
                self.aload_packed = packed;
                true
            }
            None => false,
        }
    }

    /// Apply the staged time + accuracy load atomically ("can be
    /// (re)initialized atomically in conjunction with the clock register",
    /// Section 3.3).
    pub fn apply_load(&mut self) {
        self.ltu.load_time(self.staged_time());
        self.acu.load_packed(self.aload_packed);
    }

    /// SYNCRUN pin: apply the staged load and start the clock. Used to
    /// release all clocks of an experiment simultaneously.
    pub fn sync_run(&mut self) {
        self.apply_load();
        self.ltu.set_running(true);
    }

    /// Start continuous amortization using the staged tick count.
    pub fn start_amortization_staged(&mut self) {
        let ticks = ((self.amort_hi as u128) << 32) | self.amort_lo as u128;
        self.start_amortization(ticks);
    }

    /// Start continuous amortization for `ticks` ticks. Equivalent to
    /// `ltu.start_amortization`, but also records the phase with the
    /// attached observer.
    pub fn start_amortization(&mut self, ticks: u128) {
        self.ltu.start_amortization(ticks);
        if let Some(o) = &self.obs {
            o.amort_starts.inc();
            o.amort_ticks.record(ticks.min(u64::MAX as u128) as u64);
            o.obs.event(
                self.nominal_fs(),
                o.node,
                Subsystem::Utcsu,
                "amort_start",
                Payload::Value {
                    value: ticks.min(i64::MAX as u128) as i64,
                },
            );
        }
    }

    /// Current interrupt line states.
    pub fn int_lines(&self) -> IntLines {
        self.itu.lines()
    }

    /// Advance the chip to absolute tick `n` (monotone; earlier values are
    /// a no-op). Fires duty timers, amortization end and leap events along
    /// the way, raising the corresponding interrupt sources.
    pub fn advance_to_tick(&mut self, n: u128) {
        loop {
            self.fire_expired_timers();
            if self.tick >= n {
                return;
            }
            let remaining = n - self.tick;
            let mut seg = remaining;
            if self.ltu.running() {
                if let Some(b) = self.ltu.ticks_to_boundary() {
                    seg = seg.min(b);
                }
                for t in &self.timers {
                    if t.armed {
                        let k = self.ltu.ticks_until(t.target());
                        if k > 0 {
                            seg = seg.min(k);
                        }
                    }
                }
            }
            debug_assert!(seg > 0);
            let events = self.ltu.advance(seg);
            if self.ltu.running() {
                self.acu.advance(seg);
            }
            self.tick += seg;
            for e in events {
                match e {
                    LtuEvent::AmortizationEnd => {
                        self.itu.raise(IntSource::AmortEnd);
                        if let Some(o) = &self.obs {
                            o.obs
                                .instant(self.nominal_fs(), o.node, Subsystem::Utcsu, "amort_end");
                        }
                    }
                    LtuEvent::LeapApplied(_) => self.itu.raise(IntSource::Leap),
                }
            }
        }
    }

    fn fire_expired_timers(&mut self) {
        if !self.ltu.running() {
            return;
        }
        let now = self.ltu.time();
        for (i, t) in self.timers.iter_mut().enumerate() {
            if t.expired(now) {
                t.disarm();
                self.itu.raise(IntSource::Timer(i));
            }
        }
    }

    /// The absolute tick of the next internal event (armed timer expiry,
    /// amortization end, leap boundary), if any. A node schedules a DES
    /// event at the corresponding real time, then calls
    /// [`Utcsu::advance_to_tick`] to make it fire.
    pub fn next_event_tick(&self) -> Option<u128> {
        if !self.ltu.running() {
            return None;
        }
        let mut next: Option<u128> = self.ltu.ticks_to_boundary();
        for t in &self.timers {
            if t.armed {
                let k = self.ltu.ticks_until(t.target()).max(1);
                next = Some(next.map_or(k, |n| n.min(k)));
            }
        }
        next.map(|k| self.tick + k)
    }

    // --- external triggers ---------------------------------------------
    //
    // All triggers sample the *current* chip state: the caller must have
    // advanced the chip to the sampling tick (including synchronizer
    // latency for the asynchronous GPU/APU/HWSNAP inputs) first.

    /// TRANSMIT trigger from the NTI decode logic for SSU `idx`.
    pub fn trigger_ssu_transmit(&mut self, idx: usize) -> Stamp {
        let s = Stamp::sample(self.ltu.time(), self.acu.alpha());
        self.ssu[idx].transmit.latch(s);
        self.itu.raise(IntSource::SsuTransmit(idx));
        self.obs_trigger("ssu_transmit");
        s
    }

    /// RECEIVE trigger from the NTI decode logic for SSU `idx`.
    pub fn trigger_ssu_receive(&mut self, idx: usize) -> Stamp {
        let s = Stamp::sample(self.ltu.time(), self.acu.alpha());
        self.ssu[idx].receive.latch(s);
        self.itu.raise(IntSource::SsuReceive(idx));
        self.obs_trigger("ssu_receive");
        s
    }

    /// An edge (`rising` true/false) on GPS unit `idx`'s 1pps input. The
    /// inputs are "polarity programmable" (Section 3.3): the unit stamps
    /// only on its configured edge, and only while enabled.
    pub fn gpu_edge(&mut self, idx: usize, rising: bool) -> Option<Stamp> {
        if !self.gpu[idx].enabled || self.gpu[idx].rising != rising {
            return None;
        }
        let s = Stamp::sample(self.ltu.time(), self.acu.alpha());
        self.gpu[idx].pps.latch(s);
        self.itu.raise(IntSource::Gpu(idx));
        self.obs_trigger("gpu_pps");
        Some(s)
    }

    /// Convenience: an edge of the unit's configured polarity on GPS unit
    /// `idx` (what a correctly wired receiver produces).
    pub fn trigger_gpu(&mut self, idx: usize) -> Option<Stamp> {
        let rising = self.gpu[idx].rising;
        self.gpu_edge(idx, rising)
    }

    /// An edge on application unit `idx`'s input; stamps only on the
    /// configured polarity while enabled.
    pub fn apu_edge(&mut self, idx: usize, rising: bool) -> Option<Stamp> {
        if !self.apu[idx].enabled || self.apu[idx].rising != rising {
            return None;
        }
        let s = Stamp::sample(self.ltu.time(), self.acu.alpha());
        self.apu[idx].event.latch(s);
        self.itu.raise(IntSource::Apu(idx));
        self.obs_trigger("apu_event");
        Some(s)
    }

    /// Convenience: an edge of the configured polarity on APU `idx`.
    pub fn trigger_apu(&mut self, idx: usize) -> Option<Stamp> {
        let rising = self.apu[idx].rising;
        self.apu_edge(idx, rising)
    }

    /// HWSNAP pin: snapshot time + accuracy for precision evaluation.
    pub fn trigger_hwsnap(&mut self) -> Stamp {
        self.snu.snapshot(self.ltu.time(), self.acu.alpha());
        self.obs_trigger("hwsnap");
        self.snu.peek().expect("just latched")
    }

    /// The 48-bit multiplexed **NTPA-bus** (Section 3.3): "additional
    /// application-related features can be realized off-chip by tapping
    /// the 48 bit wide multiplexed NTPA-Bus, which exports the entire
    /// local time and accuracy information at full speed."
    ///
    /// Two phases per bus cycle: phase A carries the 32-bit timestamp plus
    /// α⁻, phase B the 32-bit macrostamp plus α⁺. An extension module (or
    /// a directly attached GPS receiver, which the intermodule port also
    /// carries) latches both phases to obtain the full interval.
    pub fn ntpa_phases(&mut self) -> (u64, u64) {
        let (am, ap) = self.acu.alpha();
        let ts = self.ltu.read_timestamp();
        let ms = self.ltu.read_macrostamp();
        let a = ((ts as u64) << 16) | am.0 as u64;
        let b = ((ms as u64) << 16) | ap.0 as u64;
        (a, b)
    }
}

/// Decode a pair of NTPA-bus phases back into `(time, α⁻, α⁺)`; `None`
/// when the embedded checksum does not verify (a torn tap).
pub fn ntpa_decode(a: u64, b: u64) -> Option<(NtpTime, Accuracy, Accuracy)> {
    let ts = nti_simcore::Timestamp((a >> 16) as u32);
    let ms = nti_simcore::Macrostamp((b >> 16) as u32);
    let t = NtpTime::from_stamp_pair(ts, ms)?;
    Some((
        t,
        Accuracy((a & 0xFFFF) as u16),
        Accuracy((b & 0xFFFF) as u16),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_gates_edges() {
        let mut u = Utcsu::new(UtcsuConfig::default());
        u.sync_run();
        u.gpu[0].enabled = true;
        u.gpu[0].rising = true;
        assert!(u.gpu_edge(0, false).is_none(), "falling edge ignored");
        assert!(u.gpu_edge(0, true).is_some());
        u.apu[2].enabled = true;
        u.apu[2].rising = false;
        assert!(u.apu_edge(2, true).is_none(), "rising edge ignored");
        assert!(u.apu_edge(2, false).is_some());
    }

    #[test]
    fn ntpa_bus_roundtrip() {
        let mut u = Utcsu::new(UtcsuConfig::default());
        u.sync_run();
        u.acu.load(Accuracy(11), Accuracy(22));
        u.advance_to_tick(123_456_789);
        let direct = u.time();
        let (a, b) = u.ntpa_phases();
        let (t, am, ap) = ntpa_decode(a, b).expect("checksum");
        assert_eq!(t.ntp56(), direct.ntp56());
        assert_eq!(am, Accuracy(11));
        assert_eq!(ap, Accuracy(22));
    }

    #[test]
    fn ntpa_decode_rejects_torn_tap() {
        let mut u = Utcsu::new(UtcsuConfig::default());
        u.sync_run();
        u.advance_to_tick(999_999);
        let (a, b) = u.ntpa_phases();
        // Corrupt the macrostamp phase: checksum must fail.
        assert!(ntpa_decode(a, b ^ (1 << 40)).is_none());
    }

    fn chip(fosc: u64) -> Utcsu {
        let mut u = Utcsu::new(UtcsuConfig {
            fosc_hz: fosc,
            reliable_pin: false,
        });
        u.sync_run();
        u
    }

    #[test]
    fn advance_tracks_real_time() {
        let mut u = chip(10_000_000);
        u.advance_to_tick(10_000_000); // one nominal second
        let err = u.time().diff_secs_f64(NtpTime::from_secs(1));
        assert!(err.abs() < 3e-6, "err={err}");
        assert_eq!(u.tick(), 10_000_000);
    }

    #[test]
    fn advance_is_monotone_and_idempotent() {
        let mut u = chip(10_000_000);
        u.advance_to_tick(1000);
        let t = u.time();
        u.advance_to_tick(1000);
        u.advance_to_tick(500); // earlier: no-op
        assert_eq!(u.time(), t);
    }

    #[test]
    fn duty_timer_fires_and_raises_intt() {
        let mut u = chip(10_000_000);
        u.itu.set_mask(u32::MAX);
        u.timers[0].arm_at(NtpTime::from_raw(1u128 << (FRAC_BITS - 1))); // 0.5 s
        assert!(u.next_event_tick().is_some());
        u.advance_to_tick(10_000_000);
        assert!(u.int_lines().intt);
        assert!(!u.timers[0].armed, "one-shot");
        u.itu.ack(IntSource::Timer(0).mask());
        assert!(!u.int_lines().intt);
    }

    #[test]
    fn timer_fire_tick_is_exact() {
        let mut u = chip(10_000_000);
        u.itu.set_mask(u32::MAX);
        let target = NtpTime::from_raw(1u128 << (FRAC_BITS - 1)); // 0.5 s
        u.timers[0].arm_at(target);
        let fire_tick = u.next_event_tick().expect("armed");
        u.advance_to_tick(fire_tick - 1);
        assert!(!u.int_lines().intt, "one tick early: not yet");
        u.advance_to_tick(fire_tick);
        assert!(u.int_lines().intt);
        // At the firing tick, local time is within one step of the target.
        let over = u.time().wrapping_diff_units(target);
        assert!(over >= 0, "fired before target");
        assert!((over as u128) < (1u128 << 40), "overshoot beyond one tick");
    }

    #[test]
    fn amortization_end_raises_interrupt() {
        let mut u = chip(10_000_000);
        u.itu.set_mask(u32::MAX);
        u.amort_lo = 1000;
        u.start_amortization_staged();
        assert!(u.ltu.amortizing());
        u.advance_to_tick(1000);
        assert!(!u.ltu.amortizing());
        assert!(u.int_lines().intt);
        assert_eq!(
            u.itu.pending() & IntSource::AmortEnd.mask(),
            IntSource::AmortEnd.mask()
        );
    }

    #[test]
    fn leap_insert_during_advance() {
        let mut u = chip(10_000_000);
        u.itu.set_mask(u32::MAX);
        u.ltu.arm_leap(1, LeapDir::Insert);
        u.advance_to_tick(15_000_000); // past 1 s nominal
                                       // Inserted second: clock now reads ~0.5 s instead of ~1.5 s.
        assert_eq!(u.time().secs(), 0);
        assert!(u.itu.pending() & IntSource::Leap.mask() != 0);
    }

    #[test]
    fn triggers_latch_and_raise() {
        let mut u = chip(10_000_000);
        u.itu.set_mask(u32::MAX);
        u.advance_to_tick(123_456);
        let s = u.trigger_ssu_receive(2);
        assert!(u.ssu[2].receive.valid());
        assert!(u.int_lines().intn);
        assert_eq!(u.ssu[2].receive.peek().unwrap(), s);
        // GPU disabled by default:
        assert!(u.trigger_gpu(0).is_none());
        u.gpu[0].enabled = true;
        assert!(u.trigger_gpu(0).is_some());
        assert!(u.int_lines().inta);
    }

    #[test]
    fn back_to_back_receive_triggers_report_overrun() {
        // Two frames trigger the same SSU before the ISR services either:
        // the latch must flag the overrun and hand out the *second* stamp,
        // so software can discard both rather than attribute the second
        // frame's timestamp to the first frame.
        let mut u = chip(10_000_000);
        u.itu.set_mask(u32::MAX);
        u.advance_to_tick(1_000);
        let first = u.trigger_ssu_receive(1);
        u.advance_to_tick(2_000);
        let second = u.trigger_ssu_receive(1);
        assert!(u.ssu[1].receive.overrun(), "overrun must be visible");
        let taken = u.ssu[1].receive.take().expect("latch holds a stamp");
        assert_eq!(taken, second, "latch keeps the newest stamp");
        assert_ne!(taken, first);
        assert!(!u.ssu[1].receive.overrun(), "take clears the condition");
        // A clean third trigger stamps normally again.
        u.advance_to_tick(3_000);
        u.trigger_ssu_receive(1);
        assert!(u.ssu[1].receive.valid());
        assert!(!u.ssu[1].receive.overrun());
    }

    #[test]
    fn hwsnap_samples_current_state() {
        let mut u = chip(10_000_000);
        u.acu.load(Accuracy(5), Accuracy(9));
        u.advance_to_tick(1_000);
        let s = u.trigger_hwsnap();
        assert_eq!(s.alpha_minus, Accuracy(5));
        assert_eq!(s.alpha_plus, Accuracy(9));
        assert_eq!(u.snu.count(), 1);
    }

    #[test]
    fn stage_and_apply_load_atomic() {
        let mut u = chip(10_000_000);
        u.stage_time_load(NtpTime::from_secs(100));
        u.stage_acc_load(Accuracy(10), Accuracy(20));
        u.advance_to_tick(500);
        u.apply_load();
        assert_eq!(u.time().secs(), 100);
        assert_eq!(u.alpha(), (Accuracy(10), Accuracy(20)));
    }

    #[test]
    fn stopped_clock_freezes_time_and_accuracy() {
        let mut u = Utcsu::new(UtcsuConfig::default());
        u.acu.set_dstep_plus(1 << 30);
        u.advance_to_tick(1_000_000);
        assert_eq!(u.time(), NtpTime::ZERO);
        assert_eq!(u.alpha().1, Accuracy::ZERO);
        assert_eq!(u.next_event_tick(), None);
    }

    #[test]
    fn staged_trigger_emits_parent_linked_latch_span() {
        let mut u = Utcsu::new(UtcsuConfig {
            fosc_hz: 10_000_000,
            reliable_pin: true,
        });
        let obs = SimObserver::with_trace(64, u32::MAX);
        u.attach_observer(&obs, 3);
        let parent = obs.new_span();
        u.stage_trigger_span(parent, 1_000_000);
        u.trigger_ssu_receive(0);
        let latch = u.take_latch_span();
        assert!(latch.is_some());
        assert!(u.take_latch_span().is_none(), "take resets the id");
        let evs = obs.events();
        let link = evs
            .iter()
            .find_map(|e| match e.payload {
                Payload::SpanLink {
                    span,
                    parent: p,
                    dur_fs,
                } if e.kind == "latch" => Some((span, p, dur_fs, e.sim_time_fs)),
                _ => None,
            })
            .expect("latch span recorded");
        // 2 ticks at 10 MHz = 200 ns of synchronizer latency, ending
        // 200 ns after the staged engine-time instant.
        assert_eq!(
            link,
            (latch.0, parent.0, 200_000_000, 1_000_000 + 200_000_000)
        );
        // An unstaged trigger emits no span and leaves no id behind.
        u.trigger_ssu_receive(0);
        assert!(u.take_latch_span().is_none());
    }

    #[test]
    fn stamp_delay_depends_on_reliable_pin() {
        let a = Utcsu::new(UtcsuConfig {
            fosc_hz: 10_000_000,
            reliable_pin: false,
        });
        let b = Utcsu::new(UtcsuConfig {
            fosc_hz: 10_000_000,
            reliable_pin: true,
        });
        assert_eq!(a.stamp_delay_ticks(), 1);
        assert_eq!(b.stamp_delay_ticks(), 2);
    }

    #[test]
    #[should_panic(expected = "oscillator range")]
    fn rejects_out_of_range_fosc() {
        let _ = Utcsu::new(UtcsuConfig {
            fosc_hz: 25_000_000,
            reliable_pin: false,
        });
    }

    #[test]
    fn multiple_timers_fire_in_order() {
        let mut u = chip(10_000_000);
        u.itu.set_mask(u32::MAX);
        u.timers[0].arm_at(NtpTime::from_secs(2));
        u.timers[1].arm_at(NtpTime::from_secs(1));
        let first = u.next_event_tick().unwrap();
        u.advance_to_tick(first);
        assert!(
            u.itu.pending() & IntSource::Timer(1).mask() != 0,
            "timer 1 first"
        );
        assert!(u.itu.pending() & IntSource::Timer(0).mask() == 0);
        u.advance_to_tick(30_000_000);
        assert!(u.itu.pending() & IntSource::Timer(0).mask() != 0);
    }
}
