//! BIU — Bus Interface Unit: the UTCSU register file.
//!
//! All chip functionality is exposed through a 512-byte register window
//! (mapped by the NTI right after its 256 KB memory region, Figure 6). The
//! exact offsets of the real chip are in the unavailable technical report
//! \[SS95\]; the layout below is a documented reconstruction that preserves
//! every architectural property the paper states: atomic timestamp/
//! macrostamp reads, staged atomic time+accuracy loads, STEP/ASTEP augends
//! in 2⁻⁵¹ s units, packed 16-bit accuracy pairs, per-unit stamp registers
//! and the three-line interrupt unit.
//!
//! Dynamic bus sizing: the BIU supports byte, word and longword accesses;
//! sub-longword reads extract from the aligned 32-bit register, sub-longword
//! writes perform read-modify-write (this matches how the M-Module's 16-bit
//! data path would present the chip to an 8/16-bit CPU).
//!
//! Consumption semantics for stamp units: reads of the TS/MS halves *peek*;
//! reading the ACC register of a stamp trio **consumes** the stamp
//! (clearing valid + overrun), so the natural read order TS → MS → ACC pops
//! exactly one stamp.

use crate::ltu::LeapDir;
use crate::timer::NUM_TIMERS;
use crate::{Utcsu, NUM_APU, NUM_GPU, NUM_SSU};

/// Size of the UTCSU register window in bytes.
pub const REG_WINDOW: u32 = 0x200;

// --- LTU ---------------------------------------------------------------
/// RO: 8.24 timestamp; reading latches the matching macrostamp.
pub const R_TIMESTAMP: u32 = 0x000;
/// RO: macrostamp latched by the last TIMESTAMP read.
pub const R_MACROSTAMP: u32 = 0x004;
/// RW: staged time load, integer seconds.
pub const R_TLOAD_SECS: u32 = 0x008;
/// RW: staged time load, 24-bit fraction (low-aligned).
pub const R_TLOAD_FRAC: u32 = 0x00C;
/// RW: STEP augend, low 32 bits (2⁻⁵¹ s units).
pub const R_STEP_LO: u32 = 0x010;
/// RW: STEP augend, high 8 bits.
pub const R_STEP_HI: u32 = 0x014;
/// RW: ASTEP (amortization augend), low 32 bits.
pub const R_ASTEP_LO: u32 = 0x018;
/// RW: ASTEP, high 8 bits.
pub const R_ASTEP_HI: u32 = 0x01C;
/// RW: staged amortization duration in ticks, low 32 bits.
pub const R_AMORT_LO: u32 = 0x020;
/// RW: staged amortization duration, high 16 bits.
pub const R_AMORT_HI: u32 = 0x024;
/// Control/status register; see the `CTRL_*` bits.
pub const R_CTRL: u32 = 0x028;
/// RW: leap-second target (integer second boundary).
pub const R_LEAP_SECS: u32 = 0x02C;

// CTRL write bits (command bits self-clear).
/// RW: clock running.
pub const CTRL_RUN: u32 = 1 << 0;
/// W1: apply the staged time + accuracy load atomically.
pub const CTRL_APPLY_LOAD: u32 = 1 << 1;
/// W1: start amortization with the staged tick count.
pub const CTRL_START_AMORT: u32 = 1 << 2;
/// W1: abort a running amortization.
pub const CTRL_ABORT_AMORT: u32 = 1 << 3;
/// W1: arm leap-second *insertion* at `R_LEAP_SECS`.
pub const CTRL_LEAP_INSERT: u32 = 1 << 4;
/// W1: arm leap-second *deletion* at `R_LEAP_SECS`.
pub const CTRL_LEAP_DELETE: u32 = 1 << 5;
/// W1: disarm any pending leap second.
pub const CTRL_LEAP_DISARM: u32 = 1 << 6;
/// W1: BTU — accumulate the current time into blocksum/signature.
pub const CTRL_BTU_ACCUM: u32 = 1 << 7;
/// W1: BTU — reset accumulators.
pub const CTRL_BTU_RESET: u32 = 1 << 8;
/// W1: software SYNCRUN (apply staged load + start).
pub const CTRL_SYNCRUN: u32 = 1 << 9;
/// W1: apply only the staged *accuracy* load (the clock value keeps
/// running — used at CF time when the value is enforced by continuous
/// amortization rather than a state step).
pub const CTRL_APPLY_ALOAD: u32 = 1 << 10;
/// RO status bit: amortization in progress.
pub const CTRL_ST_AMORT: u32 = 1 << 16;
/// RO status bit: a leap second is armed.
pub const CTRL_ST_LEAP: u32 = 1 << 17;

// --- ACU ---------------------------------------------------------------
/// RO: packed accuracies (α⁻ low half, α⁺ high half).
pub const R_ALPHA: u32 = 0x030;
/// RW: staged accuracy load (packed like `R_ALPHA`).
pub const R_ALOAD: u32 = 0x034;
/// RW: per-tick deterioration of α⁻ (signed, 2⁻⁵⁹ s units).
pub const R_DSTEP_MINUS: u32 = 0x038;
/// RW: per-tick deterioration of α⁺ (signed, 2⁻⁵⁹ s units).
pub const R_DSTEP_PLUS: u32 = 0x03C;

// --- BTU ---------------------------------------------------------------
/// RO: running blocksum.
pub const R_BTU_BLOCKSUM: u32 = 0x040;
/// RO: running signature.
pub const R_BTU_SIGNATURE: u32 = 0x044;
/// RO: number of accumulated samples.
pub const R_BTU_SAMPLES: u32 = 0x048;

// --- ITU ---------------------------------------------------------------
/// RO: pending interrupt sources.
pub const R_INT_PENDING: u32 = 0x050;
/// RW: interrupt enable mask.
pub const R_INT_MASK: u32 = 0x054;
/// WO: write-1-to-clear acknowledge.
pub const R_INT_ACK: u32 = 0x058;
/// RO: line states (bit0 INTT, bit1 INTN, bit2 INTA).
pub const R_INT_STATUS: u32 = 0x05C;

// --- Duty timers ---------------------------------------------------------
/// Base of the duty-timer blocks (0x10 bytes each).
pub const R_TIMER_BASE: u32 = 0x060;
/// Stride between timer blocks.
pub const TIMER_STRIDE: u32 = 0x10;
/// Offset within a block: target integer seconds.
pub const TIMER_SECS: u32 = 0x0;
/// Offset within a block: target 24-bit fraction.
pub const TIMER_FRAC: u32 = 0x4;
/// Offset within a block: control (bit0 = armed).
pub const TIMER_CTRL: u32 = 0x8;

// --- SNU ---------------------------------------------------------------
/// RO: snapshot timestamp (peek).
pub const R_SNAP_TS: u32 = 0x090;
/// RO: snapshot macrostamp (peek).
pub const R_SNAP_MS: u32 = 0x094;
/// RO: snapshot accuracies (read consumes the snapshot).
pub const R_SNAP_ACC: u32 = 0x098;
/// Control/status: read bit0 = valid, bit1 = overrun, bits 16.. = count;
/// write bit0 = clear.
pub const R_SNU_CTRL: u32 = 0x09C;

// --- SSU ---------------------------------------------------------------
/// Base of the SSU blocks (0x20 bytes each).
pub const R_SSU_BASE: u32 = 0x0A0;
/// Stride between SSU blocks.
pub const SSU_STRIDE: u32 = 0x20;
/// Offset: receive timestamp (peek).
pub const SSU_RCV_TS: u32 = 0x00;
/// Offset: receive macrostamp (peek).
pub const SSU_RCV_MS: u32 = 0x04;
/// Offset: receive accuracies (read consumes).
pub const SSU_RCV_ACC: u32 = 0x08;
/// Offset: transmit timestamp (peek).
pub const SSU_XMT_TS: u32 = 0x0C;
/// Offset: transmit macrostamp (peek).
pub const SSU_XMT_MS: u32 = 0x10;
/// Offset: transmit accuracies (read consumes).
pub const SSU_XMT_ACC: u32 = 0x14;
/// Offset: status (bit0 rcv valid, bit1 rcv overrun, bit2 xmt valid,
/// bit3 xmt overrun); write bit0/bit2 to clear the respective latch.
pub const SSU_STATUS: u32 = 0x18;

// --- GPU ---------------------------------------------------------------
/// Base of the GPU blocks (0x10 bytes each).
pub const R_GPU_BASE: u32 = 0x160;
/// Stride between GPU blocks.
pub const GPU_STRIDE: u32 = 0x10;
/// Offset: 1pps timestamp (peek).
pub const GPU_TS: u32 = 0x0;
/// Offset: 1pps macrostamp (peek).
pub const GPU_MS: u32 = 0x4;
/// Offset: 1pps accuracies (read consumes).
pub const GPU_ACC: u32 = 0x8;
/// Offset: control (bit0 enable, bit1 rising edge; read bit2 = valid,
/// bit3 = overrun; write bit4 = clear).
pub const GPU_CTRL: u32 = 0xC;

// --- APU ---------------------------------------------------------------
/// Base of the APU blocks (0x0C bytes each).
pub const R_APU_BASE: u32 = 0x190;
/// Stride between APU blocks.
pub const APU_STRIDE: u32 = 0x0C;
/// Offset: event timestamp (peek).
pub const APU_TS: u32 = 0x0;
/// Offset: event macrostamp (peek).
pub const APU_MS: u32 = 0x4;
/// Offset: event accuracies (read consumes).
pub const APU_ACC: u32 = 0x8;
/// Shared APU control: bits 0-8 enable, bits 16-24 rising-edge polarity.
pub const R_APU_CTRL: u32 = 0x1FC;

impl Utcsu {
    /// Aligned 32-bit register read. Reserved offsets read as zero.
    pub fn read32(&mut self, offset: u32) -> u32 {
        assert!(
            offset < REG_WINDOW && offset.is_multiple_of(4),
            "bad register read at {offset:#x}"
        );
        match offset {
            R_TIMESTAMP => self.ltu.read_timestamp(),
            R_MACROSTAMP => self.ltu.read_macrostamp(),
            R_TLOAD_SECS => self.tload_secs,
            R_TLOAD_FRAC => self.tload_frac24,
            R_STEP_LO => self.ltu.step_units() as u32,
            R_STEP_HI => (self.ltu.step_units() >> 32) as u32,
            R_ASTEP_LO => self.ltu.astep_units() as u32,
            R_ASTEP_HI => (self.ltu.astep_units() >> 32) as u32,
            R_AMORT_LO => self.amort_lo,
            R_AMORT_HI => self.amort_hi,
            R_CTRL => {
                let mut v = 0;
                if self.ltu.running() {
                    v |= CTRL_RUN;
                }
                if self.ltu.amortizing() {
                    v |= CTRL_ST_AMORT;
                }
                if self.ltu.leap().is_some() {
                    v |= CTRL_ST_LEAP;
                }
                v
            }
            R_LEAP_SECS => self.leap_secs,
            R_ALPHA => self.acu.alpha_packed(),
            R_ALOAD => self.aload_packed,
            R_DSTEP_MINUS => self.acu.dsteps().0 as i32 as u32,
            R_DSTEP_PLUS => self.acu.dsteps().1 as i32 as u32,
            R_BTU_BLOCKSUM => self.btu.blocksum(),
            R_BTU_SIGNATURE => self.btu.signature(),
            R_BTU_SAMPLES => self.btu.samples(),
            R_INT_PENDING => self.itu.pending(),
            R_INT_MASK => self.itu.mask(),
            R_INT_STATUS => self.itu.lines().bits() as u32,
            R_SNAP_TS => self.snu.peek().map_or(0, |s| s.ts.0),
            R_SNAP_MS => self.snu.peek().map_or(0, |s| s.ms.0),
            R_SNAP_ACC => {
                let v = self.snu.peek().map_or(0, |s| s.acc_packed());
                self.snu.take();
                v
            }
            R_SNU_CTRL => {
                (self.snu.valid() as u32)
                    | (self.snu.overrun() as u32) << 1
                    | (self.snu.count() << 16)
            }
            R_APU_CTRL => {
                let mut v = 0;
                for (i, a) in self.apu.iter().enumerate() {
                    if a.enabled {
                        v |= 1 << i;
                    }
                    if a.rising {
                        v |= 1 << (16 + i);
                    }
                }
                v
            }
            o if (R_TIMER_BASE..R_TIMER_BASE + NUM_TIMERS as u32 * TIMER_STRIDE).contains(&o) => {
                let i = ((o - R_TIMER_BASE) / TIMER_STRIDE) as usize;
                match (o - R_TIMER_BASE) % TIMER_STRIDE {
                    TIMER_SECS => self.timers[i].target_secs,
                    TIMER_FRAC => self.timers[i].target_frac24,
                    TIMER_CTRL => self.timers[i].armed as u32,
                    _ => 0,
                }
            }
            o if (R_SSU_BASE..R_SSU_BASE + NUM_SSU as u32 * SSU_STRIDE).contains(&o) => {
                let i = ((o - R_SSU_BASE) / SSU_STRIDE) as usize;
                let ssu = &mut self.ssu[i];
                match (o - R_SSU_BASE) % SSU_STRIDE {
                    SSU_RCV_TS => ssu.receive.peek().map_or(0, |s| s.ts.0),
                    SSU_RCV_MS => ssu.receive.peek().map_or(0, |s| s.ms.0),
                    SSU_RCV_ACC => {
                        let v = ssu.receive.peek().map_or(0, |s| s.acc_packed());
                        ssu.receive.take();
                        v
                    }
                    SSU_XMT_TS => ssu.transmit.peek().map_or(0, |s| s.ts.0),
                    SSU_XMT_MS => ssu.transmit.peek().map_or(0, |s| s.ms.0),
                    SSU_XMT_ACC => {
                        let v = ssu.transmit.peek().map_or(0, |s| s.acc_packed());
                        ssu.transmit.take();
                        v
                    }
                    SSU_STATUS => {
                        (ssu.receive.valid() as u32)
                            | (ssu.receive.overrun() as u32) << 1
                            | (ssu.transmit.valid() as u32) << 2
                            | (ssu.transmit.overrun() as u32) << 3
                    }
                    _ => 0,
                }
            }
            o if (R_GPU_BASE..R_GPU_BASE + NUM_GPU as u32 * GPU_STRIDE).contains(&o) => {
                let i = ((o - R_GPU_BASE) / GPU_STRIDE) as usize;
                let gpu = &mut self.gpu[i];
                match (o - R_GPU_BASE) % GPU_STRIDE {
                    GPU_TS => gpu.pps.peek().map_or(0, |s| s.ts.0),
                    GPU_MS => gpu.pps.peek().map_or(0, |s| s.ms.0),
                    GPU_ACC => {
                        let v = gpu.pps.peek().map_or(0, |s| s.acc_packed());
                        gpu.pps.take();
                        v
                    }
                    GPU_CTRL => {
                        (gpu.enabled as u32)
                            | (gpu.rising as u32) << 1
                            | (gpu.pps.valid() as u32) << 2
                            | (gpu.pps.overrun() as u32) << 3
                    }
                    _ => 0,
                }
            }
            o if (R_APU_BASE..R_APU_BASE + NUM_APU as u32 * APU_STRIDE).contains(&o) => {
                let rel = o - R_APU_BASE;
                let i = (rel / APU_STRIDE) as usize;
                let apu = &mut self.apu[i];
                match rel % APU_STRIDE {
                    APU_TS => apu.event.peek().map_or(0, |s| s.ts.0),
                    APU_MS => apu.event.peek().map_or(0, |s| s.ms.0),
                    APU_ACC => {
                        let v = apu.event.peek().map_or(0, |s| s.acc_packed());
                        apu.event.take();
                        v
                    }
                    _ => 0,
                }
            }
            _ => 0,
        }
    }

    /// Aligned 32-bit register write. Writes to reserved/RO offsets are
    /// ignored.
    pub fn write32(&mut self, offset: u32, value: u32) {
        assert!(
            offset < REG_WINDOW && offset.is_multiple_of(4),
            "bad register write at {offset:#x}"
        );
        match offset {
            R_TLOAD_SECS => self.tload_secs = value,
            R_TLOAD_FRAC => self.tload_frac24 = value & 0x00FF_FFFF,
            R_STEP_LO => {
                let hi = self.ltu.step_units() & !0xFFFF_FFFF;
                self.ltu.set_step_units(hi | value as u64);
            }
            R_STEP_HI => {
                let lo = self.ltu.step_units() & 0xFFFF_FFFF;
                self.ltu.set_step_units(((value as u64 & 0xFF) << 32) | lo);
            }
            R_ASTEP_LO => {
                let hi = self.ltu.astep_units() & !0xFFFF_FFFF;
                self.ltu.set_astep_units(hi | value as u64);
            }
            R_ASTEP_HI => {
                let lo = self.ltu.astep_units() & 0xFFFF_FFFF;
                self.ltu.set_astep_units(((value as u64 & 0xFF) << 32) | lo);
            }
            R_AMORT_LO => self.amort_lo = value,
            R_AMORT_HI => self.amort_hi = value & 0xFFFF,
            R_CTRL => {
                self.ltu.set_running(value & CTRL_RUN != 0);
                if value & CTRL_APPLY_LOAD != 0 {
                    self.apply_load();
                }
                if value & CTRL_START_AMORT != 0 {
                    self.start_amortization_staged();
                }
                if value & CTRL_ABORT_AMORT != 0 {
                    self.ltu.abort_amortization();
                }
                if value & CTRL_LEAP_INSERT != 0 {
                    self.ltu.arm_leap(self.leap_secs, LeapDir::Insert);
                }
                if value & CTRL_LEAP_DELETE != 0 {
                    self.ltu.arm_leap(self.leap_secs, LeapDir::Delete);
                }
                if value & CTRL_LEAP_DISARM != 0 {
                    self.ltu.disarm_leap();
                }
                if value & CTRL_BTU_ACCUM != 0 {
                    let t = self.ltu.time();
                    self.btu.accumulate(t);
                }
                if value & CTRL_BTU_RESET != 0 {
                    self.btu.reset();
                }
                if value & CTRL_SYNCRUN != 0 {
                    self.sync_run();
                }
                if value & CTRL_APPLY_ALOAD != 0 {
                    self.acu.load_packed(self.aload_packed);
                }
            }
            R_LEAP_SECS => self.leap_secs = value,
            R_ALOAD => self.aload_packed = value,
            R_DSTEP_MINUS => self.acu.set_dstep_minus(value as i32 as i64),
            R_DSTEP_PLUS => self.acu.set_dstep_plus(value as i32 as i64),
            R_INT_MASK => self.itu.set_mask(value),
            R_INT_ACK => self.itu.ack(value),
            R_SNU_CTRL if value & 1 != 0 => {
                self.snu.take();
            }
            R_APU_CTRL => {
                for (i, a) in self.apu.iter_mut().enumerate() {
                    a.enabled = value & (1 << i) != 0;
                    a.rising = value & (1 << (16 + i)) != 0;
                }
            }
            o if (R_TIMER_BASE..R_TIMER_BASE + NUM_TIMERS as u32 * TIMER_STRIDE).contains(&o) => {
                let i = ((o - R_TIMER_BASE) / TIMER_STRIDE) as usize;
                match (o - R_TIMER_BASE) % TIMER_STRIDE {
                    TIMER_SECS => self.timers[i].target_secs = value,
                    TIMER_FRAC => self.timers[i].target_frac24 = value & 0x00FF_FFFF,
                    TIMER_CTRL => self.timers[i].armed = value & 1 != 0,
                    _ => {}
                }
            }
            o if (R_SSU_BASE..R_SSU_BASE + NUM_SSU as u32 * SSU_STRIDE).contains(&o) => {
                let i = ((o - R_SSU_BASE) / SSU_STRIDE) as usize;
                if (o - R_SSU_BASE) % SSU_STRIDE == SSU_STATUS {
                    if value & 0b01 != 0 {
                        self.ssu[i].receive.clear();
                    }
                    if value & 0b100 != 0 {
                        self.ssu[i].transmit.clear();
                    }
                }
            }
            o if (R_GPU_BASE..R_GPU_BASE + NUM_GPU as u32 * GPU_STRIDE).contains(&o) => {
                let i = ((o - R_GPU_BASE) / GPU_STRIDE) as usize;
                if (o - R_GPU_BASE) % GPU_STRIDE == GPU_CTRL {
                    self.gpu[i].enabled = value & 1 != 0;
                    self.gpu[i].rising = value & 2 != 0;
                    if value & 0x10 != 0 {
                        self.gpu[i].pps.clear();
                    }
                }
            }
            _ => {}
        }
    }

    /// 16-bit read (dynamic bus sizing): extracts from the aligned 32-bit
    /// register.
    pub fn read16(&mut self, offset: u32) -> u16 {
        assert!(offset.is_multiple_of(2), "unaligned 16-bit read");
        let v = self.read32(offset & !3);
        if offset & 2 != 0 {
            (v >> 16) as u16
        } else {
            v as u16
        }
    }

    /// 8-bit read.
    pub fn read8(&mut self, offset: u32) -> u8 {
        let v = self.read32(offset & !3);
        (v >> (8 * (offset & 3))) as u8
    }

    /// 16-bit write (read-modify-write on the aligned register).
    pub fn write16(&mut self, offset: u32, value: u16) {
        assert!(offset.is_multiple_of(2), "unaligned 16-bit write");
        let cur = self.read32(offset & !3);
        let v = if offset & 2 != 0 {
            (cur & 0x0000_FFFF) | ((value as u32) << 16)
        } else {
            (cur & 0xFFFF_0000) | value as u32
        };
        self.write32(offset & !3, v);
    }

    /// 8-bit write (read-modify-write).
    pub fn write8(&mut self, offset: u32, value: u8) {
        let cur = self.read32(offset & !3);
        let shift = 8 * (offset & 3);
        let v = (cur & !(0xFFu32 << shift)) | ((value as u32) << shift);
        self.write32(offset & !3, v);
    }

    /// Arm duty timer `i` at the given second + 24-bit fraction via the
    /// register interface (what the driver does).
    pub fn arm_timer_regs(&mut self, i: usize, secs: u32, frac24: u32) {
        let base = R_TIMER_BASE + i as u32 * TIMER_STRIDE;
        self.write32(base + TIMER_SECS, secs);
        self.write32(base + TIMER_FRAC, frac24);
        self.write32(base + TIMER_CTRL, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itu::IntSource;
    use crate::{Utcsu, UtcsuConfig};
    use nti_simcore::{Accuracy, Macrostamp, NtpTime, Timestamp};

    fn chip() -> Utcsu {
        let mut u = Utcsu::new(UtcsuConfig::default());
        u.write32(R_CTRL, CTRL_SYNCRUN | CTRL_RUN);
        u
    }

    #[test]
    fn timestamp_then_macrostamp_is_atomic_pair() {
        let mut u = chip();
        u.advance_to_tick(12_345_678);
        let ts = u.read32(R_TIMESTAMP);
        u.advance_to_tick(99_999_999);
        let ms = u.read32(R_MACROSTAMP);
        assert!(NtpTime::from_stamp_pair(Timestamp(ts), Macrostamp(ms)).is_some());
    }

    #[test]
    fn step_registers_roundtrip_40_bits() {
        let mut u = chip();
        u.write32(R_STEP_LO, 0xDEAD_BEEF);
        u.write32(R_STEP_HI, 0xAB);
        assert_eq!(u.ltu.step_units(), 0xAB_DEAD_BEEF);
        assert_eq!(u.read32(R_STEP_LO), 0xDEAD_BEEF);
        assert_eq!(u.read32(R_STEP_HI), 0xAB);
    }

    #[test]
    fn ctrl_apply_load_is_atomic() {
        let mut u = chip();
        u.write32(R_TLOAD_SECS, 77);
        u.write32(R_TLOAD_FRAC, 0x123456);
        u.write32(R_ALOAD, 0x00200010);
        u.write32(R_CTRL, CTRL_RUN | CTRL_APPLY_LOAD);
        assert_eq!(u.time().secs(), 77);
        assert_eq!(u.alpha(), (Accuracy(0x10), Accuracy(0x20)));
    }

    /// Regression (PR 5): the α packing must round-trip exactly at the
    /// 16-bit register boundaries and keep the halves independent.
    #[test]
    fn aload_roundtrips_at_16bit_boundaries() {
        use crate::acu::{pack_alpha, unpack_alpha};
        for (m, p) in [
            (0u16, 0u16),
            (0, 0xFFFF),
            (0xFFFF, 0),
            (0xFFFF, 0xFFFF),
            (0x10, 0x20),
        ] {
            let (minus, plus) = (Accuracy(m), Accuracy(p));
            let packed = pack_alpha(minus, plus);
            assert_eq!(unpack_alpha(packed), (minus, plus));
            let mut u = chip();
            u.write32(R_ALOAD, packed);
            assert_eq!(u.read32(R_ALOAD), packed, "staged register readback");
            u.write32(R_CTRL, CTRL_RUN | CTRL_APPLY_ALOAD);
            assert_eq!(u.alpha(), (minus, plus), "m={m:#x} p={p:#x}");
            assert_eq!(u.read32(R_ALPHA), packed, "packed ALPHA readback");
        }
    }

    /// Regression (PR 5): out-of-range α units are refused instead of
    /// silently truncated to a tighter (unsafe) bound.
    #[test]
    fn aload_units_overflow_is_rejected() {
        let mut u = chip();
        assert!(u.stage_acc_load_units(0xFFFF, 0xFFFF));
        assert_eq!(u.read32(R_ALOAD), 0xFFFF_FFFF);
        // One past the register range in either half: rejected, staged
        // value unchanged.
        assert!(!u.stage_acc_load_units(0x1_0000, 0));
        assert!(!u.stage_acc_load_units(0, 0x1_0000));
        assert!(!u.stage_acc_load_units(u32::MAX, u32::MAX));
        assert_eq!(
            u.read32(R_ALOAD),
            0xFFFF_FFFF,
            "rejected stage must not apply"
        );
        assert!(u.stage_acc_load_units(0, 0));
        assert_eq!(u.read32(R_ALOAD), 0);
    }

    #[test]
    fn ctrl_status_bits() {
        let mut u = chip();
        assert_eq!(u.read32(R_CTRL) & CTRL_RUN, CTRL_RUN);
        u.write32(R_AMORT_LO, 500);
        u.write32(R_CTRL, CTRL_RUN | CTRL_START_AMORT);
        assert!(u.read32(R_CTRL) & CTRL_ST_AMORT != 0);
        u.write32(R_CTRL, CTRL_RUN | CTRL_ABORT_AMORT);
        assert!(u.read32(R_CTRL) & CTRL_ST_AMORT == 0);
        u.write32(R_LEAP_SECS, 100);
        u.write32(R_CTRL, CTRL_RUN | CTRL_LEAP_INSERT);
        assert!(u.read32(R_CTRL) & CTRL_ST_LEAP != 0);
        u.write32(R_CTRL, CTRL_RUN | CTRL_LEAP_DISARM);
        assert!(u.read32(R_CTRL) & CTRL_ST_LEAP == 0);
    }

    #[test]
    fn ssu_read_order_consumes_exactly_one_stamp() {
        let mut u = chip();
        u.advance_to_tick(1000);
        u.trigger_ssu_receive(0);
        let base = R_SSU_BASE;
        assert_eq!(u.read32(base + SSU_STATUS) & 1, 1);
        let _ts = u.read32(base + SSU_RCV_TS);
        let _ms = u.read32(base + SSU_RCV_MS);
        assert_eq!(u.read32(base + SSU_STATUS) & 1, 1, "TS/MS reads peek");
        let _acc = u.read32(base + SSU_RCV_ACC);
        assert_eq!(u.read32(base + SSU_STATUS) & 1, 0, "ACC read consumes");
    }

    #[test]
    fn ssu_status_write_clears() {
        let mut u = chip();
        u.trigger_ssu_receive(3);
        u.trigger_ssu_transmit(3);
        let base = R_SSU_BASE + 3 * SSU_STRIDE;
        assert_eq!(u.read32(base + SSU_STATUS) & 0b101, 0b101);
        u.write32(base + SSU_STATUS, 0b101);
        assert_eq!(u.read32(base + SSU_STATUS), 0);
    }

    #[test]
    fn gpu_ctrl_enable_and_status() {
        let mut u = chip();
        let base = R_GPU_BASE + GPU_STRIDE; // unit 1
        u.write32(base + GPU_CTRL, 0b11); // enable, rising
        assert!(u.gpu[1].enabled);
        u.trigger_gpu(1);
        assert_eq!(u.read32(base + GPU_CTRL) & 0b100, 0b100, "valid bit");
        let _ = u.read32(base + GPU_ACC);
        assert_eq!(u.read32(base + GPU_CTRL) & 0b100, 0);
    }

    #[test]
    fn apu_shared_ctrl() {
        let mut u = chip();
        u.write32(R_APU_CTRL, 0x01FF_0155); // odd-numbered polarity, some enables
        assert!(u.apu[0].enabled);
        assert!(!u.apu[1].enabled);
        assert!(u.apu[2].enabled);
        assert!(u.apu[0].rising);
        u.trigger_apu(0);
        let v = u.read32(R_APU_BASE + APU_TS);
        let _ = v;
        let _ = u.read32(R_APU_BASE + APU_ACC);
        assert!(!u.apu[0].event.valid());
    }

    #[test]
    fn timer_armed_via_registers_fires() {
        let mut u = chip();
        u.write32(R_INT_MASK, u32::MAX);
        u.arm_timer_regs(2, 0, 1 << 23); // 0.5 s
        assert!(u.timers[2].armed);
        u.advance_to_tick(10_000_000);
        assert!(u.read32(R_INT_PENDING) & IntSource::Timer(2).mask() != 0);
        assert_eq!(u.read32(R_INT_STATUS) & 1, 1, "INTT line");
        u.write32(R_INT_ACK, u32::MAX);
        assert_eq!(u.read32(R_INT_STATUS), 0);
    }

    #[test]
    fn snapshot_registers() {
        let mut u = chip();
        u.advance_to_tick(5000);
        u.trigger_hwsnap();
        assert_eq!(u.read32(R_SNU_CTRL) & 1, 1);
        let _ts = u.read32(R_SNAP_TS);
        let _acc = u.read32(R_SNAP_ACC); // consumes
        assert_eq!(u.read32(R_SNU_CTRL) & 1, 0);
        assert_eq!(u.read32(R_SNU_CTRL) >> 16, 1, "count survives");
    }

    #[test]
    fn btu_via_ctrl() {
        let mut u = chip();
        u.advance_to_tick(42);
        u.write32(R_CTRL, CTRL_RUN | CTRL_BTU_ACCUM);
        assert_eq!(u.read32(R_BTU_SAMPLES), 1);
        assert_ne!(u.read32(R_BTU_SIGNATURE), 0);
        u.write32(R_CTRL, CTRL_RUN | CTRL_BTU_RESET);
        assert_eq!(u.read32(R_BTU_SAMPLES), 0);
    }

    #[test]
    fn sub_word_access() {
        let mut u = chip();
        u.write32(R_TLOAD_SECS, 0);
        u.write16(R_TLOAD_SECS, 0xBEEF);
        u.write16(R_TLOAD_SECS + 2, 0xDEAD);
        assert_eq!(u.read32(R_TLOAD_SECS), 0xDEAD_BEEF);
        assert_eq!(u.read8(R_TLOAD_SECS + 3), 0xDE);
        u.write8(R_TLOAD_SECS, 0x42);
        assert_eq!(u.read16(R_TLOAD_SECS), 0xBE42);
    }

    #[test]
    fn dstep_registers_sign_extend() {
        let mut u = chip();
        u.write32(R_DSTEP_MINUS, (-5i32) as u32);
        assert_eq!(u.acu.dsteps().0, -5);
        assert_eq!(u.read32(R_DSTEP_MINUS), (-5i32) as u32);
    }

    #[test]
    fn reserved_offsets_are_inert() {
        let mut u = chip();
        u.write32(0x04C, 0xFFFF_FFFF);
        assert_eq!(u.read32(0x04C), 0);
    }

    #[test]
    #[should_panic(expected = "bad register read")]
    fn out_of_window_read_panics() {
        let mut u = chip();
        let _ = u.read32(REG_WINDOW);
    }
}
