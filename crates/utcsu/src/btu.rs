//! BTU — Built-In Test Unit.
//!
//! The UTCSU is equipped with features for test purposes: calculation of
//! checksums, blocksums and signatures for local time (Section 3.3). Such
//! provisions are mandatory for self-checking fault-tolerant nodes: a node
//! can periodically verify that its clock datapath has not been corrupted.
//!
//! The model implements:
//!
//! * an 8-bit additive **checksum** of the current 56-bit NTP time (the
//!   same function protecting the macrostamp);
//! * a 32-bit **blocksum** accumulating successive time samples;
//! * a 32-bit MISR-style **signature** (CRC-like LFSR compaction) over
//!   sampled times — two UTCSUs fed the same samples must produce the same
//!   signature, so diverging signatures flag a faulty unit.

use nti_simcore::ntp::{checksum8, NtpTime};

/// The built-in test unit.
#[derive(Clone, Copy, Debug, Default)]
pub struct Btu {
    blocksum: u32,
    signature: u32,
    samples: u32,
}

/// The MISR feedback polynomial (CRC-32 IEEE, bit-reversed form).
const MISR_POLY: u32 = 0xEDB8_8320;

impl Btu {
    /// Fresh unit with cleared accumulators.
    pub fn new() -> Self {
        Btu::default()
    }

    /// 8-bit checksum of the given clock value (combinational; matches the
    /// macrostamp checksum).
    pub fn checksum(&self, t: NtpTime) -> u8 {
        checksum8(t.ntp56())
    }

    /// Feed one time sample into the blocksum and signature accumulators.
    pub fn accumulate(&mut self, t: NtpTime) {
        let v = t.ntp56();
        self.blocksum = self
            .blocksum
            .wrapping_add((v & 0xFFFF_FFFF) as u32)
            .wrapping_add((v >> 32) as u32);
        // MISR step: shift in each byte.
        let mut sig = self.signature;
        for i in 0..7 {
            let byte = ((v >> (8 * i)) & 0xFF) as u32;
            sig ^= byte;
            for _ in 0..8 {
                sig = if sig & 1 != 0 {
                    (sig >> 1) ^ MISR_POLY
                } else {
                    sig >> 1
                };
            }
        }
        self.signature = sig;
        self.samples = self.samples.wrapping_add(1);
    }

    /// The running blocksum.
    pub fn blocksum(&self) -> u32 {
        self.blocksum
    }

    /// The running signature.
    pub fn signature(&self) -> u32 {
        self.signature
    }

    /// Number of accumulated samples.
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// Clear the accumulators (test restart).
    pub fn reset(&mut self) {
        *self = Btu::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sample_streams_produce_identical_signatures() {
        let mut a = Btu::new();
        let mut b = Btu::new();
        for s in 0..100u32 {
            a.accumulate(NtpTime::from_secs(s));
            b.accumulate(NtpTime::from_secs(s));
        }
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.blocksum(), b.blocksum());
        assert_eq!(a.samples(), 100);
    }

    #[test]
    fn diverging_streams_diverge() {
        let mut a = Btu::new();
        let mut b = Btu::new();
        for s in 0..100u32 {
            a.accumulate(NtpTime::from_secs(s));
            b.accumulate(NtpTime::from_secs(if s == 50 { 51 } else { s }));
        }
        assert_ne!(
            a.signature(),
            b.signature(),
            "single-sample fault must be caught"
        );
    }

    #[test]
    fn order_sensitivity_of_signature() {
        let mut a = Btu::new();
        let mut b = Btu::new();
        a.accumulate(NtpTime::from_secs(1));
        a.accumulate(NtpTime::from_secs(2));
        b.accumulate(NtpTime::from_secs(2));
        b.accumulate(NtpTime::from_secs(1));
        assert_ne!(a.signature(), b.signature(), "MISR must be order-sensitive");
        // ...whereas the plain blocksum is not:
        assert_eq!(a.blocksum(), b.blocksum());
    }

    #[test]
    fn reset_clears_state() {
        let mut a = Btu::new();
        a.accumulate(NtpTime::from_secs(7));
        a.reset();
        assert_eq!(a.signature(), 0);
        assert_eq!(a.blocksum(), 0);
        assert_eq!(a.samples(), 0);
    }

    #[test]
    fn checksum_matches_macrostamp_checksum() {
        let t = NtpTime::from_secs(123_456_789);
        assert_eq!(Btu::new().checksum(t), t.macrostamp().checksum());
    }
}
