//! SNU — Snapshot Unit.
//!
//! Debug support (Section 3.3): snapshots of certain registers to
//! facilitate an experimental evaluation of precision/accuracy, plus
//! (re)start operations. Two external pins are modelled:
//!
//! * **HWSNAP** — a common snapshot line distributed to every UTCSU in the
//!   testbed; asserting it samples local time + accuracy into dedicated
//!   snapshot registers on *all* nodes at the same real-time instant, which
//!   is how pairwise clock differences (the precision) are measured without
//!   disturbing the clocks;
//! * **SYNCRUN** — a common start line: loads the staged time and starts the
//!   clock, so an experiment begins with all clocks released simultaneously.

use crate::stamp::{Stamp, StampLatch};
use nti_simcore::ntp::NtpTime;
use nti_simcore::Accuracy;

/// The snapshot unit.
#[derive(Clone, Copy, Debug, Default)]
pub struct Snu {
    latch: StampLatch,
    snaps: u32,
}

impl Snu {
    /// Fresh unit.
    pub fn new() -> Self {
        Snu::default()
    }

    /// HWSNAP assertion: sample the given clock state.
    pub fn snapshot(&mut self, time: NtpTime, alpha: (Accuracy, Accuracy)) {
        self.latch.latch(Stamp::sample(time, alpha));
        self.snaps = self.snaps.wrapping_add(1);
    }

    /// Read and consume the snapshot.
    pub fn take(&mut self) -> Option<Stamp> {
        self.latch.take()
    }

    /// Peek without consuming.
    pub fn peek(&self) -> Option<Stamp> {
        self.latch.peek()
    }

    /// Whether a snapshot is pending.
    pub fn valid(&self) -> bool {
        self.latch.valid()
    }

    /// Whether a snapshot was overwritten before being read.
    pub fn overrun(&self) -> bool {
        self.latch.overrun()
    }

    /// Number of snapshots taken since reset.
    pub fn count(&self) -> u32 {
        self.snaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_take() {
        let mut s = Snu::new();
        assert!(!s.valid());
        s.snapshot(NtpTime::from_secs(9), (Accuracy(1), Accuracy(2)));
        assert!(s.valid());
        assert_eq!(s.count(), 1);
        let st = s.take().unwrap();
        assert_eq!(st.time().unwrap().secs(), 9);
        assert_eq!(st.alpha_minus, Accuracy(1));
        assert!(!s.valid());
    }

    #[test]
    fn overrun_on_double_snapshot() {
        let mut s = Snu::new();
        s.snapshot(NtpTime::from_secs(1), (Accuracy::ZERO, Accuracy::ZERO));
        s.snapshot(NtpTime::from_secs(2), (Accuracy::ZERO, Accuracy::ZERO));
        assert!(s.overrun());
        assert_eq!(s.take().unwrap().time().unwrap().secs(), 2);
    }
}
