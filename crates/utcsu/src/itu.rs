//! ITU — Interrupt Unit.
//!
//! The many interrupt sources inside the UTCSU are individually maskable
//! and statically mapped onto three interrupt outputs (Section 3.3):
//!
//! * **INTT** — timer-related: duty timers, amortization end, leap applied;
//! * **INTN** — network-related: SSU transmit/receive stamps;
//! * **INTA** — application-related: GPU 1pps and APU event stamps.
//!
//! The NTI's CPLD further folds these three lines into the single vectorized
//! M-Module interrupt (see `nti-module`); the final vector encodes the line
//! states.

/// Interrupt source bit positions in the 32-bit pending/mask registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IntSource {
    /// Duty timer `i` (0..3) expired.
    Timer(usize),
    /// Continuous amortization completed.
    AmortEnd,
    /// Armed leap second was applied.
    Leap,
    /// SSU `i` (0..6) latched a receive stamp.
    SsuReceive(usize),
    /// SSU `i` (0..6) latched a transmit stamp.
    SsuTransmit(usize),
    /// GPU `i` (0..3) latched a 1pps stamp.
    Gpu(usize),
    /// APU `i` (0..9) latched an event stamp.
    Apu(usize),
}

impl IntSource {
    /// The bit index of this source.
    pub fn bit(self) -> u32 {
        match self {
            IntSource::Timer(i) => {
                assert!(i < 3);
                i as u32
            }
            IntSource::AmortEnd => 3,
            IntSource::Leap => 4,
            IntSource::SsuReceive(i) => {
                assert!(i < 6);
                8 + i as u32
            }
            IntSource::SsuTransmit(i) => {
                assert!(i < 6);
                14 + i as u32
            }
            IntSource::Gpu(i) => {
                assert!(i < 3);
                20 + i as u32
            }
            IntSource::Apu(i) => {
                assert!(i < 9);
                23 + i as u32
            }
        }
    }

    /// The mask bit of this source.
    pub fn mask(self) -> u32 {
        1u32 << self.bit()
    }
}

/// Sources mapped to INTT (timer-related).
pub const INTT_GROUP: u32 = 0x0000_001F;
/// Sources mapped to INTN (network-related).
pub const INTN_GROUP: u32 = 0x000F_FF00;
/// Sources mapped to INTA (application-related).
pub const INTA_GROUP: u32 = 0xFFF0_0000;

/// Snapshot of the three interrupt output lines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IntLines {
    /// Timer-related line.
    pub intt: bool,
    /// Network-related line.
    pub intn: bool,
    /// Application-related line.
    pub inta: bool,
}

impl IntLines {
    /// Whether any line is asserted.
    pub fn any(self) -> bool {
        self.intt || self.intn || self.inta
    }
    /// The 3-bit encoding used in the NTI's interrupt vector
    /// (bit0 = INTT, bit1 = INTN, bit2 = INTA).
    pub fn bits(self) -> u8 {
        self.intt as u8 | (self.intn as u8) << 1 | (self.inta as u8) << 2
    }
}

/// The interrupt unit: pending sources + mask.
#[derive(Clone, Copy, Debug, Default)]
pub struct Itu {
    pending: u32,
    mask: u32,
}

impl Itu {
    /// All sources masked (disabled), nothing pending.
    pub fn new() -> Self {
        Itu::default()
    }

    /// Raise a source (level until acknowledged).
    pub fn raise(&mut self, src: IntSource) {
        self.pending |= src.mask();
    }

    /// Pending register value.
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// Mask register (1 = enabled).
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Program the mask register.
    pub fn set_mask(&mut self, mask: u32) {
        self.mask = mask;
    }

    /// Write-one-to-clear acknowledge.
    pub fn ack(&mut self, bits: u32) {
        self.pending &= !bits;
    }

    /// Current states of the three output lines (pending AND enabled).
    pub fn lines(&self) -> IntLines {
        let live = self.pending & self.mask;
        IntLines {
            intt: live & INTT_GROUP != 0,
            intn: live & INTN_GROUP != 0,
            inta: live & INTA_GROUP != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_positions_are_disjoint() {
        let mut seen = 0u32;
        let mut push = |s: IntSource| {
            let m = s.mask();
            assert_eq!(seen & m, 0, "overlap at {s:?}");
            seen |= m;
        };
        for i in 0..3 {
            push(IntSource::Timer(i));
        }
        push(IntSource::AmortEnd);
        push(IntSource::Leap);
        for i in 0..6 {
            push(IntSource::SsuReceive(i));
            push(IntSource::SsuTransmit(i));
        }
        for i in 0..3 {
            push(IntSource::Gpu(i));
        }
        for i in 0..9 {
            push(IntSource::Apu(i));
        }
        // Every defined source falls into exactly one group.
        assert_eq!(seen & INTT_GROUP & INTN_GROUP, 0);
        assert_eq!(seen & (INTT_GROUP | INTN_GROUP | INTA_GROUP), seen);
    }

    #[test]
    fn masked_sources_do_not_assert_lines() {
        let mut itu = Itu::new();
        itu.raise(IntSource::Timer(0));
        assert!(!itu.lines().any(), "masked by default");
        itu.set_mask(IntSource::Timer(0).mask());
        assert!(itu.lines().intt);
        assert!(!itu.lines().intn);
    }

    #[test]
    fn groups_map_to_correct_lines() {
        let mut itu = Itu::new();
        itu.set_mask(u32::MAX);
        itu.raise(IntSource::SsuReceive(2));
        assert_eq!(
            itu.lines(),
            IntLines {
                intt: false,
                intn: true,
                inta: false
            }
        );
        itu.raise(IntSource::Gpu(1));
        assert!(itu.lines().inta && itu.lines().intn);
        itu.raise(IntSource::Leap);
        assert_eq!(itu.lines().bits(), 0b111);
    }

    #[test]
    fn ack_clears_selected_bits() {
        let mut itu = Itu::new();
        itu.set_mask(u32::MAX);
        itu.raise(IntSource::Timer(1));
        itu.raise(IntSource::Apu(4));
        itu.ack(IntSource::Timer(1).mask());
        assert!(!itu.lines().intt);
        assert!(itu.lines().inta);
        itu.ack(u32::MAX);
        assert_eq!(itu.pending(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_source_panics() {
        let _ = IntSource::SsuReceive(6).bit();
    }
}
