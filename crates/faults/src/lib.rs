#![warn(missing_docs)]

//! Deterministic cross-layer fault injection.
//!
//! The paper's central claim is that interval-based synchronization
//! *contains* faults: accuracy intervals deteriorate honestly, clock
//! validation guards external time, and the convergence function masks up to
//! `f` arbitrary participants. This crate provides the machinery to put that
//! claim under stress — a [`FaultPlan`] is a schedule of typed
//! [`FaultEpisode`]s (activation window + target + parameters) that a seeded
//! [`FaultInjector`] applies at every layer of the simulation:
//!
//! | layer          | episode kinds                                            |
//! |----------------|----------------------------------------------------------|
//! | netsim         | [`FaultKind::PacketLoss`], [`FaultKind::PacketDuplicate`], [`FaultKind::PacketDelay`] (asymmetric per direction; jitter reorders), [`FaultKind::Partition`] |
//! | simcore/osc    | [`FaultKind::DriftExcursion`] (temperature steps, frequency glitches) |
//! | nti/comco      | [`FaultKind::MissedTrigger`], [`FaultKind::LateTrigger`] (lost / late timestamps) |
//! | gps            | [`FaultKind::Gps`] (the HS97 catalogue from `nti-gps`)    |
//! | node lifecycle | [`FaultKind::Crash`] (crash at `from`, restart at `until`), [`FaultKind::Byzantine`], [`FaultKind::CrcError`] |
//!
//! All randomness flows from one `SimRng` handed to the injector, split into
//! named per-class streams, so a run with the same seed and the same plan is
//! bit-identical — and a run with an *empty* plan draws nothing at all.
//! Every injected event is observable through `nti-obs` under the `faults`
//! subsystem (episode boundaries, drops, duplicates, missed/late triggers,
//! crashes, rejoins).

use nti_gps::GpsFault;
use nti_obs::{MetricKey, SimObserver, SpanId, Subsystem};
use nti_simcore::{DriftExcursion, SimDuration, SimRng, SimTime};
use std::sync::Arc;

pub mod serve_path;

pub use serve_path::{
    fuzz_corpus, FloodShape, FloodSource, IngressFate, ServeFaultEpisode, ServeFaultInjector,
    ServeFaultKind, ServeFaultPlan,
};

/// "Never": an episode `until` of this value means the fault lasts for the
/// whole run (for [`FaultKind::Crash`]: the node never restarts).
pub const FOREVER: SimTime = SimTime::MAX;

/// What a fault episode applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// A single node (cluster index).
    Node(usize),
    /// A whole LAN segment (topology index).
    Lan(usize),
    /// Every node / every segment.
    All,
}

impl FaultTarget {
    /// Does this target cover node `n`?
    pub fn covers_node(self, n: usize) -> bool {
        matches!(self, FaultTarget::All) || self == FaultTarget::Node(n)
    }

    /// Does this target cover LAN `l`?
    pub fn covers_lan(self, l: usize) -> bool {
        matches!(self, FaultTarget::All) || self == FaultTarget::Lan(l)
    }
}

/// Which direction of a node's traffic a [`FaultKind::PacketDelay`] affects.
/// Asymmetric path delay (only one direction slowed) is the classic
/// worst case for round-trip-based sync and a first-class scenario here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Frames the target transmits.
    Tx,
    /// Frames the target receives.
    Rx,
    /// Both directions.
    Both,
}

/// The typed fault taxonomy. Each variant names the layer it is injected at.
#[derive(Clone, Copy, Debug)]
pub enum FaultKind {
    /// netsim: drop each covered reception independently with `rate`.
    PacketLoss {
        /// Per-reception drop probability in `[0, 1]`.
        rate: f64,
    },
    /// netsim: deliver each covered reception twice with `rate` (the copy
    /// arrives one frame-time later — exercising duplicate suppression and
    /// receive-latch pressure).
    PacketDuplicate {
        /// Per-reception duplication probability in `[0, 1]`.
        rate: f64,
    },
    /// netsim: add `extra` (+ uniform `jitter`) one-way delay to covered
    /// receptions. With a node target the `direction` selects transmit-side,
    /// receive-side, or both — asymmetric delay. Jitter makes deliveries
    /// reorder relative to each other. With a LAN target the delay is
    /// applied to the segment's propagation (direction is ignored).
    PacketDelay {
        /// Deterministic extra one-way delay.
        extra: SimDuration,
        /// Additional uniform random delay in `[0, jitter)` per reception.
        jitter: SimDuration,
        /// Which direction of node traffic is slowed.
        direction: Direction,
    },
    /// netsim: no frame crosses the target (a partitioned node hears and
    /// reaches nobody; a partitioned LAN isolates its members).
    Partition,
    /// simcore/osc: the target node's oscillator runs `extra_ppm` off its
    /// modelled drift during the window (temperature step / glitch).
    DriftExcursion {
        /// Additional fractional frequency offset in ppm.
        extra_ppm: f64,
    },
    /// nti/comco: each covered receive-timestamp trigger is lost with
    /// `rate` — the frame arrives but carries no hardware timestamp.
    MissedTrigger {
        /// Per-trigger loss probability in `[0, 1]`.
        rate: f64,
    },
    /// nti/comco: each covered receive-timestamp trigger fires `delay` late
    /// with `rate` — the timestamp is taken at the wrong instant.
    LateTrigger {
        /// Per-trigger probability in `[0, 1]`.
        rate: f64,
        /// How late the trigger fires.
        delay: SimDuration,
    },
    /// gps: inject one fault from the HS97 catalogue into the target node's
    /// `receiver`-th GPS receiver. The `GpsFault` carries its own activation
    /// window (UTC seconds); the episode window is ignored.
    Gps {
        /// Index of the receiver on the target node.
        receiver: usize,
        /// The fault to inject.
        fault: GpsFault,
    },
    /// lifecycle: the target node crashes at `from` and restarts at `until`
    /// with cold clock state ([`FOREVER`] = never), then reintegrates via
    /// the initial-sync machinery before rejoining convergence.
    Crash,
    /// lifecycle: the target node sends arbitrarily wrong (two-faced)
    /// synchronization intervals while the episode is active.
    Byzantine,
    /// lifecycle/netsim: each CSP the target transmits is CRC-corrupted with
    /// `rate` (receivers still see the receive trigger, then discard —
    /// footnote 4 semantics).
    CrcError {
        /// Per-transmission corruption probability in `[0, 1]`.
        rate: f64,
    },
}

/// One scheduled fault: a [`FaultKind`] applied to a [`FaultTarget`] while
/// `from <= now < until`.
#[derive(Clone, Copy, Debug)]
pub struct FaultEpisode {
    /// Activation start (inclusive). For [`FaultKind::Crash`]: crash time.
    pub from: SimTime,
    /// Activation end (exclusive). For [`FaultKind::Crash`]: restart time.
    pub until: SimTime,
    /// What the episode applies to.
    pub target: FaultTarget,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEpisode {
    /// Is the episode active at `now`?
    pub fn active(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// A deterministic schedule of fault episodes.
///
/// Build one with [`FaultPlan::with`] chains or the legacy-knob constructors
/// ([`FaultPlan::byzantine`], [`FaultPlan::crc_errors`], [`FaultPlan::gps`],
/// [`FaultPlan::crash`]), then hand it to `ClusterConfig.fault_plan`. An
/// empty plan injects nothing and leaves the simulation bit-identical to a
/// fault-free run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    episodes: Vec<FaultEpisode>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// The scheduled episodes.
    pub fn episodes(&self) -> &[FaultEpisode] {
        &self.episodes
    }

    /// Append an episode.
    pub fn push(&mut self, episode: FaultEpisode) {
        self.episodes.push(episode);
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, episode: FaultEpisode) -> Self {
        self.push(episode);
        self
    }

    /// Append all episodes of `other`.
    pub fn merge(&mut self, other: &FaultPlan) {
        self.episodes.extend_from_slice(&other.episodes);
    }

    /// Legacy shim: the given nodes behave Byzantine for the whole run
    /// (equivalent of the old `ClusterConfig.byzantine` knob).
    pub fn byzantine(nodes: &[usize]) -> Self {
        let mut plan = FaultPlan::new();
        for &n in nodes {
            plan.push(FaultEpisode {
                from: SimTime::ZERO,
                until: FOREVER,
                target: FaultTarget::Node(n),
                kind: FaultKind::Byzantine,
            });
        }
        plan
    }

    /// Legacy shim: every node corrupts each transmitted CSP with `rate`
    /// (equivalent of the old `ClusterConfig.crc_error_rate` knob).
    pub fn crc_errors(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        FaultPlan::new().with(FaultEpisode {
            from: SimTime::ZERO,
            until: FOREVER,
            target: FaultTarget::All,
            kind: FaultKind::CrcError { rate },
        })
    }

    /// Legacy shim: inject `fault` into receiver `receiver` of node `node`
    /// (equivalent of the old `GpsNodeCfg.faults` path; the `GpsFault`
    /// carries its own activation window).
    pub fn gps(node: usize, receiver: usize, fault: GpsFault) -> Self {
        FaultPlan::new().with(FaultEpisode {
            from: SimTime::ZERO,
            until: FOREVER,
            target: FaultTarget::Node(node),
            kind: FaultKind::Gps { receiver, fault },
        })
    }

    /// Node `node` crashes at `at` and restarts at `restart` (`None` =
    /// never) with cold clock state.
    pub fn crash(node: usize, at: SimTime, restart: Option<SimTime>) -> Self {
        let until = restart.unwrap_or(FOREVER);
        assert!(at < until, "restart must come after crash");
        FaultPlan::new().with(FaultEpisode {
            from: at,
            until,
            target: FaultTarget::Node(node),
            kind: FaultKind::Crash,
        })
    }
}

/// What a membership-churn event does to its node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnKind {
    /// The node powers up and starts reintegrating. A node whose *first*
    /// churn event is a `Join` is dark from simulation start until then
    /// (it must still be present in the topology — joining reserves the
    /// seat, it does not create the hardware).
    Join,
    /// The node leaves the ensemble (graceful departure; operationally a
    /// crash without the surprise — peers see silence either way).
    Leave,
    /// The node detaches from its current segment and reattaches to
    /// `to_lan` (ordinary nodes only; bridges are the topology).
    Move {
        /// Destination LAN id.
        to_lan: usize,
    },
}

/// One scheduled membership change.
#[derive(Clone, Copy, Debug)]
pub struct ChurnEvent {
    /// When it happens.
    pub at: SimTime,
    /// The node it happens to.
    pub node: usize,
    /// What happens.
    pub kind: ChurnKind,
}

/// A deterministic schedule of membership churn: plan-driven joins, leaves
/// and moves, the dynamic-membership analogue of [`FaultPlan`]. Follows the
/// same determinism contract: churn handling is active **only when the plan
/// is non-empty**, and any randomness (cold-boot clock offsets of joining
/// nodes) comes from a dedicated named stream, so an empty plan leaves the
/// run bit-identical to a churn-free one and the same seed + same plan
/// reproduces the same `Report` bit-for-bit.
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// An empty plan (static membership).
    pub fn new() -> Self {
        ChurnPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in plan order (ties at equal times resolve in
    /// plan order too).
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Append an event.
    pub fn push(&mut self, event: ChurnEvent) {
        self.events.push(event);
    }

    /// Builder-style [`ChurnPlan::push`].
    pub fn with(mut self, event: ChurnEvent) -> Self {
        self.push(event);
        self
    }

    /// Builder: `node` joins (powers up dark-started or rejoins) at `at`.
    pub fn join(self, node: usize, at: SimTime) -> Self {
        self.with(ChurnEvent {
            at,
            node,
            kind: ChurnKind::Join,
        })
    }

    /// Builder: `node` leaves the ensemble at `at`.
    pub fn leave(self, node: usize, at: SimTime) -> Self {
        self.with(ChurnEvent {
            at,
            node,
            kind: ChurnKind::Leave,
        })
    }

    /// Builder: `node` moves to segment `to_lan` at `at`.
    pub fn move_to(self, node: usize, at: SimTime, to_lan: usize) -> Self {
        self.with(ChurnEvent {
            at,
            node,
            kind: ChurnKind::Move { to_lan },
        })
    }

    /// Which of `n` nodes start the run powered down: those whose first
    /// scheduled event is a `Join`.
    pub fn initially_down(&self, n: usize) -> Vec<bool> {
        let mut down = vec![false; n];
        let mut seen = vec![false; n];
        let mut by_time: Vec<&ChurnEvent> = self.events.iter().collect();
        by_time.sort_by_key(|e| e.at);
        for e in by_time {
            if e.node < n && !seen[e.node] {
                seen[e.node] = true;
                down[e.node] = e.kind == ChurnKind::Join;
            }
        }
        down
    }
}

/// Pre-resolved `faults`-subsystem instrumentation.
struct FaultObs {
    obs: SimObserver,
    pkt_dropped: Arc<nti_obs::Counter>,
    pkt_duplicated: Arc<nti_obs::Counter>,
    triggers_missed: Arc<nti_obs::Counter>,
    triggers_late: Arc<nti_obs::Counter>,
    crashes: Arc<nti_obs::Counter>,
    rejoins: Arc<nti_obs::Counter>,
}

/// Applies a [`FaultPlan`] with seeded, per-class RNG streams.
///
/// The cluster queries the injector at each decision point (transmission,
/// reception scheduling, trigger arming, …). Query methods that consult the
/// RNG draw **only when at least one matching episode is active**, so an
/// empty or inactive plan never perturbs the simulation's draw sequence.
pub struct FaultInjector {
    episodes: Vec<FaultEpisode>,
    /// Stream for packet loss / duplication decisions.
    net_rng: SimRng,
    /// Stream for per-reception delay jitter.
    delay_rng: SimRng,
    /// Stream for missed/late trigger decisions.
    trigger_rng: SimRng,
    /// Stream for CRC corruption decisions.
    crc_rng: SimRng,
    /// Stream for lifecycle draws (cold-restart clock offset).
    lifecycle_rng: SimRng,
    /// Stream for churn draws (cold-boot offset of plan-driven joins) —
    /// separate from `lifecycle_rng` so a churn plan composes with a fault
    /// plan without perturbing its draw sequence.
    churn_rng: SimRng,
    obs: Option<FaultObs>,
}

/// Combine independent per-episode probabilities into one draw:
/// P(any fires) = 1 − Π(1 − rᵢ).
fn combine(rates: impl Iterator<Item = f64>) -> f64 {
    let mut miss = 1.0;
    let mut any = false;
    for r in rates {
        any = true;
        miss *= 1.0 - r.clamp(0.0, 1.0);
    }
    if any {
        1.0 - miss
    } else {
        0.0
    }
}

impl FaultInjector {
    /// Build an injector for `plan`, deriving all streams from `rng`.
    pub fn new(plan: &FaultPlan, rng: &SimRng) -> Self {
        FaultInjector {
            episodes: plan.episodes.clone(),
            net_rng: rng.split("faults.net"),
            delay_rng: rng.split("faults.delay"),
            trigger_rng: rng.split("faults.trigger"),
            crc_rng: rng.split("faults.crc"),
            lifecycle_rng: rng.split("faults.lifecycle"),
            churn_rng: rng.split("faults.churn"),
            obs: None,
        }
    }

    /// Attach nti-obs instrumentation (no-op for a disabled observer).
    pub fn attach_observer(&mut self, obs: &SimObserver) {
        self.obs = if obs.is_enabled() {
            Some(FaultObs {
                obs: obs.clone(),
                pkt_dropped: obs
                    .counter(MetricKey::global("faults", "pkt_dropped"))
                    .expect("enabled"),
                pkt_duplicated: obs
                    .counter(MetricKey::global("faults", "pkt_duplicated"))
                    .expect("enabled"),
                triggers_missed: obs
                    .counter(MetricKey::global("faults", "triggers_missed"))
                    .expect("enabled"),
                triggers_late: obs
                    .counter(MetricKey::global("faults", "triggers_late"))
                    .expect("enabled"),
                crashes: obs
                    .counter(MetricKey::global("faults", "crashes"))
                    .expect("enabled"),
                rejoins: obs
                    .counter(MetricKey::global("faults", "rejoins"))
                    .expect("enabled"),
            })
        } else {
            None
        };
    }

    /// True when the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// The scheduled episodes.
    pub fn episodes(&self) -> &[FaultEpisode] {
        &self.episodes
    }

    /// All finite episode boundaries (starts and ends), sorted and deduped —
    /// the instants at which LAN-level fault state must be recomputed.
    pub fn boundaries(&self) -> Vec<SimTime> {
        let mut ts: Vec<SimTime> = Vec::new();
        for e in &self.episodes {
            if matches!(e.kind, FaultKind::Gps { .. }) {
                continue; // windows live inside the GpsFault itself
            }
            ts.push(e.from);
            if e.until < FOREVER {
                ts.push(e.until);
            }
        }
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Crash schedules: `(node, crash_at, restart_at)` per crash episode
    /// (`None` = never restarts). `All`/`Lan` targets are rejected — a crash
    /// must name its node.
    pub fn crash_windows(&self) -> Vec<(usize, SimTime, Option<SimTime>)> {
        self.episodes
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash))
            .map(|e| match e.target {
                FaultTarget::Node(n) => {
                    let restart = (e.until < FOREVER).then_some(e.until);
                    (n, e.from, restart)
                }
                t => panic!("Crash episodes must target a node, got {t:?}"),
            })
            .collect()
    }

    /// Drift excursions to install on node `n`'s oscillator at build time.
    pub fn drift_excursions(&self, n: usize) -> Vec<DriftExcursion> {
        self.episodes
            .iter()
            .filter(|e| e.target.covers_node(n))
            .filter_map(|e| match e.kind {
                FaultKind::DriftExcursion { extra_ppm } => Some(DriftExcursion {
                    from: e.from,
                    until: e.until,
                    extra_ppm,
                }),
                _ => None,
            })
            .collect()
    }

    /// GPS faults to inject into node `n`'s receivers at build time:
    /// `(receiver, fault)`.
    pub fn gps_faults(&self, n: usize) -> Vec<(usize, GpsFault)> {
        self.episodes
            .iter()
            .filter(|e| e.target.covers_node(n))
            .filter_map(|e| match e.kind {
                FaultKind::Gps { receiver, fault } => Some((receiver, fault)),
                _ => None,
            })
            .collect()
    }

    /// Is node `n` Byzantine at `now`?
    pub fn is_byzantine(&self, n: usize, now: SimTime) -> bool {
        self.episodes.iter().any(|e| {
            matches!(e.kind, FaultKind::Byzantine) && e.target.covers_node(n) && e.active(now)
        })
    }

    /// Should the CSP node `src` transmits at `now` be CRC-corrupted?
    /// Draws at most once.
    pub fn crc_corrupt(&mut self, src: usize, now: SimTime) -> bool {
        let p = combine(self.episodes.iter().filter_map(|e| match e.kind {
            FaultKind::CrcError { rate } if e.target.covers_node(src) && e.active(now) => {
                Some(rate)
            }
            _ => None,
        }));
        p > 0.0 && self.crc_rng.chance(p)
    }

    /// Is node `n` partitioned away (hears and reaches nobody) at `now`?
    pub fn node_partitioned(&self, n: usize, now: SimTime) -> bool {
        self.episodes.iter().any(|e| {
            matches!(e.kind, FaultKind::Partition)
                && e.target == FaultTarget::Node(n)
                && e.active(now)
        })
    }

    /// Is LAN `l` partitioned (no frame crosses it) at `now`? `All`-target
    /// partitions cover every segment.
    pub fn lan_partitioned(&self, l: usize, now: SimTime) -> bool {
        self.episodes.iter().any(|e| {
            matches!(e.kind, FaultKind::Partition) && e.target.covers_lan(l) && e.active(now)
        })
    }

    /// Extra propagation delay in force on LAN `l` at `now` (LAN-targeted
    /// [`FaultKind::PacketDelay`] episodes only; deterministic part, no
    /// jitter — applied via `Medium::set_extra_propagation`).
    pub fn lan_extra_delay(&self, l: usize, now: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for e in &self.episodes {
            if let FaultKind::PacketDelay { extra, .. } = e.kind {
                if matches!(e.target, FaultTarget::Lan(x) if x == l) && e.active(now) {
                    total += extra;
                }
            }
        }
        total
    }

    /// Should the reception `src → dst` at `now` be dropped? Covers
    /// node-targeted (tx or rx side) and `All` packet-loss episodes plus
    /// node partitions. Draws at most once; counts the drop when it fires.
    pub fn drop_reception(&mut self, src: usize, dst: usize, now: SimTime) -> bool {
        if self.node_partitioned(src, now) || self.node_partitioned(dst, now) {
            self.count_instant(now, dst, "fault_pkt_dropped", |o| &o.pkt_dropped);
            return true;
        }
        let p = combine(self.episodes.iter().filter_map(|e| match e.kind {
            FaultKind::PacketLoss { rate }
                if (e.target.covers_node(src) || e.target.covers_node(dst)) && e.active(now) =>
            {
                Some(rate)
            }
            _ => None,
        }));
        let dropped = p > 0.0 && self.net_rng.chance(p);
        if dropped {
            self.count_instant(now, dst, "fault_pkt_dropped", |o| &o.pkt_dropped);
        }
        dropped
    }

    /// Should the reception `src → dst` at `now` be delivered twice?
    /// Draws at most once; counts the duplicate when it fires.
    pub fn duplicate_reception(&mut self, src: usize, dst: usize, now: SimTime) -> bool {
        let p = combine(self.episodes.iter().filter_map(|e| match e.kind {
            FaultKind::PacketDuplicate { rate }
                if (e.target.covers_node(src) || e.target.covers_node(dst)) && e.active(now) =>
            {
                Some(rate)
            }
            _ => None,
        }));
        let dup = p > 0.0 && self.net_rng.chance(p);
        if dup {
            self.count_instant(now, dst, "fault_pkt_duplicated", |o| &o.pkt_duplicated);
        }
        dup
    }

    /// Extra arrival delay for the reception `src → dst` at `now`
    /// (node-/`All`-targeted [`FaultKind::PacketDelay`]; direction-aware;
    /// jitter drawn per reception — LAN-targeted delay is handled by
    /// [`FaultInjector::lan_extra_delay`] instead).
    pub fn extra_arrival_delay(&mut self, src: usize, dst: usize, now: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut jitter_bound = SimDuration::ZERO;
        for e in &self.episodes {
            let FaultKind::PacketDelay {
                extra,
                jitter,
                direction,
            } = e.kind
            else {
                continue;
            };
            if matches!(e.target, FaultTarget::Lan(_)) || !e.active(now) {
                continue;
            }
            let applies = match direction {
                Direction::Tx => e.target.covers_node(src),
                Direction::Rx => e.target.covers_node(dst),
                Direction::Both => e.target.covers_node(src) || e.target.covers_node(dst),
            };
            if applies {
                total += extra;
                jitter_bound += jitter;
            }
        }
        if jitter_bound > SimDuration::ZERO {
            let j = self
                .delay_rng
                .below(jitter_bound.as_fs().min(u64::MAX as u128) as u64);
            total += SimDuration::from_fs(j as u128);
        }
        total
    }

    /// Is node `n`'s receive-timestamp trigger at `now` lost? Draws at most
    /// once; counts when it fires.
    pub fn missed_trigger(&mut self, n: usize, now: SimTime) -> bool {
        let p = combine(self.episodes.iter().filter_map(|e| match e.kind {
            FaultKind::MissedTrigger { rate } if e.target.covers_node(n) && e.active(now) => {
                Some(rate)
            }
            _ => None,
        }));
        let missed = p > 0.0 && self.trigger_rng.chance(p);
        if missed {
            self.count_instant(now, n, "fault_trigger_missed", |o| &o.triggers_missed);
        }
        missed
    }

    /// Does node `n`'s receive-timestamp trigger at `now` fire late, and by
    /// how much? Draws at most once; counts when it fires. The delay is the
    /// maximum over active matching episodes.
    pub fn late_trigger(&mut self, n: usize, now: SimTime) -> Option<SimDuration> {
        let mut p_inputs: Vec<f64> = Vec::new();
        let mut max_delay = SimDuration::ZERO;
        for e in &self.episodes {
            if let FaultKind::LateTrigger { rate, delay } = e.kind {
                if e.target.covers_node(n) && e.active(now) {
                    p_inputs.push(rate);
                    max_delay = max_delay.max(delay);
                }
            }
        }
        let p = combine(p_inputs.into_iter());
        if p > 0.0 && max_delay > SimDuration::ZERO && self.trigger_rng.chance(p) {
            self.count_instant(now, n, "fault_trigger_late", |o| &o.triggers_late);
            Some(max_delay)
        } else {
            None
        }
    }

    /// The lifecycle RNG stream (cold-restart clock offset draws).
    pub fn lifecycle_rng(&mut self) -> &mut SimRng {
        &mut self.lifecycle_rng
    }

    /// The churn RNG stream (cold-boot offset draws of plan-driven joins).
    pub fn churn_rng(&mut self) -> &mut SimRng {
        &mut self.churn_rng
    }

    /// Record a node crash.
    pub fn note_crash(&mut self, now: SimTime, n: usize) {
        self.count_instant(now, n, "fault_crash", |o| &o.crashes);
    }

    /// Record a restarted node completing reintegration.
    pub fn note_rejoin(&mut self, now: SimTime, n: usize) {
        self.count_instant(now, n, "fault_rejoin", |o| &o.rejoins);
    }

    /// Annotate a causal span with an injected-fault marker: a child span
    /// (kind `fault_<what>`, e.g. `fault_trigger_late`) under `parent` in
    /// the `faults` subsystem ending at `now`, whose duration `value_fs`
    /// is the magnitude of the anomaly (e.g. the injected delay) — so the
    /// fault shows up *inside* the affected CSP's span tree and an
    /// analyzer can tell injected anomalies from organic ones. No-op when
    /// no observer is attached or `parent` is null.
    pub fn annotate_span(
        &self,
        now: SimTime,
        node: usize,
        kind: &'static str,
        parent: SpanId,
        value_fs: u128,
    ) {
        let Some(o) = &self.obs else { return };
        if parent.is_none() {
            return;
        }
        let span = o.obs.new_span();
        o.obs.span_link(
            now.as_fs(),
            value_fs,
            node as u32,
            Subsystem::Faults,
            kind,
            span,
            parent,
        );
    }

    /// Trace the episode boundaries crossing `now` (start/end instants).
    pub fn note_boundary(&self, now: SimTime) {
        let Some(o) = &self.obs else { return };
        for e in &self.episodes {
            if matches!(e.kind, FaultKind::Gps { .. }) {
                continue;
            }
            let node = match e.target {
                FaultTarget::Node(n) => n as u32,
                _ => nti_obs::GLOBAL_NODE,
            };
            if e.from == now {
                o.obs
                    .instant(now.as_fs(), node, Subsystem::Faults, "episode_start");
            }
            if e.until == now {
                o.obs
                    .instant(now.as_fs(), node, Subsystem::Faults, "episode_end");
            }
        }
    }

    fn count_instant(
        &self,
        now: SimTime,
        node: usize,
        kind: &'static str,
        pick: impl Fn(&FaultObs) -> &Arc<nti_obs::Counter>,
    ) {
        if let Some(o) = &self.obs {
            pick(o).inc();
            o.obs
                .instant(now.as_fs(), node as u32, Subsystem::Faults, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn episode_windows_are_half_open() {
        let e = FaultEpisode {
            from: t(2),
            until: t(5),
            target: FaultTarget::All,
            kind: FaultKind::Partition,
        };
        assert!(!e.active(t(1)));
        assert!(e.active(t(2)));
        assert!(e.active(t(4)));
        assert!(!e.active(t(5)));
    }

    #[test]
    fn legacy_constructors_build_expected_episodes() {
        let plan = FaultPlan::byzantine(&[1, 4]);
        assert_eq!(plan.episodes().len(), 2);
        let inj = FaultInjector::new(&plan, &SimRng::new(1));
        assert!(inj.is_byzantine(1, t(0)));
        assert!(inj.is_byzantine(4, t(1_000_000)));
        assert!(!inj.is_byzantine(2, t(0)));

        let mut inj = FaultInjector::new(&FaultPlan::crc_errors(1.0), &SimRng::new(1));
        assert!(inj.crc_corrupt(0, t(3)));

        let crash = FaultInjector::new(&FaultPlan::crash(2, t(5), Some(t(9))), &SimRng::new(1));
        assert_eq!(crash.crash_windows(), vec![(2, t(5), Some(t(9)))]);
        let dead = FaultInjector::new(&FaultPlan::crash(2, t(5), None), &SimRng::new(1));
        assert_eq!(dead.crash_windows(), vec![(2, t(5), None)]);
    }

    #[test]
    fn churn_plan_builders_and_initially_down() {
        let plan = ChurnPlan::new()
            .leave(1, t(10))
            .join(1, t(14))
            .join(3, t(6))
            .move_to(0, t(8), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.events().len(), 4);
        assert_eq!(plan.events()[3].kind, ChurnKind::Move { to_lan: 2 });
        // Node 3's first event (by time) is a Join: it starts dark. Node 1
        // leaves before it rejoins, so it starts up.
        assert_eq!(
            plan.initially_down(5),
            vec![false, false, false, true, false]
        );
        assert!(ChurnPlan::new().is_empty());
        assert_eq!(ChurnPlan::new().initially_down(3), vec![false; 3]);
    }

    #[test]
    fn churn_stream_is_independent_of_lifecycle() {
        // Drawing from the churn stream must not disturb the lifecycle
        // stream's sequence (a churn plan composes with a fault plan).
        let mut a = FaultInjector::new(&FaultPlan::new(), &SimRng::new(77));
        let mut b = FaultInjector::new(&FaultPlan::new(), &SimRng::new(77));
        let _ = b.churn_rng().below(1_000);
        assert_eq!(
            a.lifecycle_rng().below(1_000_000),
            b.lifecycle_rng().below(1_000_000)
        );
    }

    #[test]
    fn packet_loss_respects_window_target_and_rate_extremes() {
        let plan = FaultPlan::new().with(FaultEpisode {
            from: t(10),
            until: t(20),
            target: FaultTarget::Node(3),
            kind: FaultKind::PacketLoss { rate: 1.0 },
        });
        let mut inj = FaultInjector::new(&plan, &SimRng::new(9));
        // Outside window: never drops, never draws.
        assert!(!inj.drop_reception(3, 0, t(5)));
        // Inside window, src side and rx side both covered.
        assert!(inj.drop_reception(3, 0, t(15)));
        assert!(inj.drop_reception(0, 3, t(15)));
        // Unrelated pair unaffected.
        assert!(!inj.drop_reception(0, 1, t(15)));
    }

    #[test]
    fn partition_drops_all_node_traffic() {
        let plan = FaultPlan::new().with(FaultEpisode {
            from: t(1),
            until: t(2),
            target: FaultTarget::Node(0),
            kind: FaultKind::Partition,
        });
        let mut inj = FaultInjector::new(&plan, &SimRng::new(3));
        assert!(inj.drop_reception(0, 5, t(1)));
        assert!(inj.drop_reception(5, 0, t(1)));
        assert!(!inj.drop_reception(4, 5, t(1)));
        assert!(!inj.node_partitioned(0, t(2)));
    }

    #[test]
    fn lan_partition_and_delay_only_cover_their_segment() {
        let plan = FaultPlan::new()
            .with(FaultEpisode {
                from: t(1),
                until: t(2),
                target: FaultTarget::Lan(1),
                kind: FaultKind::Partition,
            })
            .with(FaultEpisode {
                from: t(1),
                until: t(2),
                target: FaultTarget::Lan(0),
                kind: FaultKind::PacketDelay {
                    extra: SimDuration::from_micros(40),
                    jitter: SimDuration::ZERO,
                    direction: Direction::Both,
                },
            });
        let inj = FaultInjector::new(&plan, &SimRng::new(3));
        assert!(inj.lan_partitioned(1, t(1)));
        assert!(!inj.lan_partitioned(0, t(1)));
        assert_eq!(inj.lan_extra_delay(0, t(1)), SimDuration::from_micros(40));
        assert_eq!(inj.lan_extra_delay(1, t(1)), SimDuration::ZERO);
        assert_eq!(inj.lan_extra_delay(0, t(3)), SimDuration::ZERO);
    }

    #[test]
    fn asymmetric_delay_applies_per_direction() {
        let plan = FaultPlan::new().with(FaultEpisode {
            from: t(0),
            until: FOREVER,
            target: FaultTarget::Node(2),
            kind: FaultKind::PacketDelay {
                extra: SimDuration::from_micros(100),
                jitter: SimDuration::ZERO,
                direction: Direction::Tx,
            },
        });
        let mut inj = FaultInjector::new(&plan, &SimRng::new(3));
        // Frames node 2 sends are slowed …
        assert_eq!(
            inj.extra_arrival_delay(2, 0, t(1)),
            SimDuration::from_micros(100)
        );
        // … frames it receives are not.
        assert_eq!(inj.extra_arrival_delay(0, 2, t(1)), SimDuration::ZERO);
    }

    #[test]
    fn delay_jitter_is_bounded_and_varies() {
        let plan = FaultPlan::new().with(FaultEpisode {
            from: t(0),
            until: FOREVER,
            target: FaultTarget::All,
            kind: FaultKind::PacketDelay {
                extra: SimDuration::ZERO,
                jitter: SimDuration::from_micros(10),
                direction: Direction::Both,
            },
        });
        let mut inj = FaultInjector::new(&plan, &SimRng::new(3));
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            let d = inj.extra_arrival_delay(0, 1, t(1));
            assert!(d < SimDuration::from_micros(10));
            distinct.insert(d.as_fs());
        }
        assert!(distinct.len() > 8, "jitter should vary per reception");
    }

    #[test]
    fn trigger_faults_fire_within_window() {
        let plan = FaultPlan::new()
            .with(FaultEpisode {
                from: t(0),
                until: t(10),
                target: FaultTarget::Node(1),
                kind: FaultKind::MissedTrigger { rate: 1.0 },
            })
            .with(FaultEpisode {
                from: t(10),
                until: t(20),
                target: FaultTarget::Node(1),
                kind: FaultKind::LateTrigger {
                    rate: 1.0,
                    delay: SimDuration::from_nanos(300),
                },
            });
        let mut inj = FaultInjector::new(&plan, &SimRng::new(11));
        assert!(inj.missed_trigger(1, t(5)));
        assert!(!inj.missed_trigger(1, t(15)));
        assert!(!inj.missed_trigger(0, t(5)));
        assert_eq!(
            inj.late_trigger(1, t(15)),
            Some(SimDuration::from_nanos(300))
        );
        assert_eq!(inj.late_trigger(1, t(5)), None);
    }

    #[test]
    fn same_seed_same_plan_same_decisions() {
        let plan = FaultPlan::new().with(FaultEpisode {
            from: t(0),
            until: FOREVER,
            target: FaultTarget::All,
            kind: FaultKind::PacketLoss { rate: 0.3 },
        });
        let mut a = FaultInjector::new(&plan, &SimRng::new(77));
        let mut b = FaultInjector::new(&plan, &SimRng::new(77));
        for i in 0..200u64 {
            let now = SimTime::from_millis(i);
            assert_eq!(a.drop_reception(0, 1, now), b.drop_reception(0, 1, now));
        }
    }

    #[test]
    fn boundaries_are_sorted_finite_and_deduped() {
        let plan = FaultPlan::new()
            .with(FaultEpisode {
                from: t(5),
                until: t(9),
                target: FaultTarget::All,
                kind: FaultKind::Partition,
            })
            .with(FaultEpisode {
                from: t(2),
                until: FOREVER,
                target: FaultTarget::Node(0),
                kind: FaultKind::Byzantine,
            })
            .with(FaultEpisode {
                from: t(5),
                until: t(9),
                target: FaultTarget::Node(1),
                kind: FaultKind::PacketLoss { rate: 0.5 },
            });
        let inj = FaultInjector::new(&plan, &SimRng::new(1));
        assert_eq!(inj.boundaries(), vec![t(2), t(5), t(9)]);
    }

    #[test]
    fn combined_rate_uses_one_draw() {
        // Two rate-0.5 episodes combine to 0.75 — and a rate-1.0 episode
        // forces the drop regardless of the draw.
        let plan = FaultPlan::new()
            .with(FaultEpisode {
                from: t(0),
                until: FOREVER,
                target: FaultTarget::All,
                kind: FaultKind::PacketLoss { rate: 0.5 },
            })
            .with(FaultEpisode {
                from: t(0),
                until: FOREVER,
                target: FaultTarget::All,
                kind: FaultKind::PacketLoss { rate: 1.0 },
            });
        let mut inj = FaultInjector::new(&plan, &SimRng::new(5));
        for i in 0..32u64 {
            assert!(inj.drop_reception(0, 1, SimTime::from_millis(i)));
        }
    }

    #[test]
    fn drift_excursions_extract_per_node() {
        let plan = FaultPlan::new().with(FaultEpisode {
            from: t(3),
            until: t(6),
            target: FaultTarget::Node(2),
            kind: FaultKind::DriftExcursion { extra_ppm: 4.0 },
        });
        let inj = FaultInjector::new(&plan, &SimRng::new(1));
        assert!(inj.drift_excursions(0).is_empty());
        let ex = inj.drift_excursions(2);
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].from, t(3));
        assert_eq!(ex[0].until, t(6));
        assert_eq!(ex[0].extra_ppm, 4.0);
    }
}
