//! Deterministic fault injection for the **serving path** (`nti-serve`).
//!
//! The simulation-side [`FaultPlan`](crate::FaultPlan) schedules faults in
//! *simulation* time; the serving layer lives in *wall-clock* time — shard
//! threads draining real UDP sockets while the simulation publishes status
//! frames at its own pace. A [`ServeFaultPlan`] is the serve-side analogue:
//! a schedule of [`ServeFaultEpisode`]s whose windows are wall-clock offsets
//! from server start, applied by a seeded [`ServeFaultInjector`]:
//!
//! | where            | episode kinds                                       |
//! |------------------|-----------------------------------------------------|
//! | server ingress   | [`ServeFaultKind::IngressDrop`], [`ServeFaultKind::IngressDuplicate`], [`ServeFaultKind::IngressTruncate`], [`ServeFaultKind::IngressCorrupt`] |
//! | offered traffic  | [`ServeFaultKind::Flood`] (abusive datagrams from N spoofed sources) |
//! | upstream ensemble| [`ServeFaultKind::SimStall`] (the publisher wedges; frames freeze) |
//!
//! The ingress kinds mangle datagrams *after* the socket but *before* the
//! codec — the server must classify whatever survives without panicking,
//! answering only well-formed client-mode queries. `Flood` and `SimStall`
//! are consumed by the harness (`e20_abuse`): flood episodes shape the
//! attack traffic generator, stall episodes wedge the simulation thread so
//! the staleness ladder in `nti-serve` is exercised end to end.
//!
//! Determinism follows the crate's contract: all randomness comes from
//! named streams split off one seed ([`ServeFaultInjector::for_shard`]
//! derives per-shard streams so shard threads never share RNG state), and
//! an empty plan draws nothing at all.

use nti_simcore::SimRng;
use std::time::Duration;

/// What a serve-path episode does while active.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServeFaultKind {
    /// Ingress: drop each arriving datagram with `rate` before decode.
    IngressDrop {
        /// Per-datagram drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Ingress: process each arriving datagram twice with `rate`
    /// (a duplicated request must produce at most duplicated replies,
    /// never corrupted state).
    IngressDuplicate {
        /// Per-datagram duplication probability in `[0, 1]`.
        rate: f64,
    },
    /// Ingress: truncate each arriving datagram to a uniform prefix with
    /// `rate` (hostile short reads; the codec must reject, not panic).
    IngressTruncate {
        /// Per-datagram truncation probability in `[0, 1]`.
        rate: f64,
    },
    /// Ingress: XOR one uniformly-chosen byte of the datagram with a
    /// non-zero mask with `rate` (bit rot anywhere in the header or
    /// trailer; decode must stay total).
    IngressCorrupt {
        /// Per-datagram corruption probability in `[0, 1]`.
        rate: f64,
    },
    /// Harness: an abuse episode — `sources` distinct spoofed origins
    /// send hostile datagrams as fast as they can while the window is
    /// open. Consumed by the load harness, not the server.
    Flood {
        /// How many distinct attack sources (sockets) fire concurrently.
        sources: usize,
    },
    /// Harness: the simulation thread stalls — no frame is published while
    /// the window is open, so served frames age and the staleness ladder
    /// (stratum escalation → dispersion widening → KoD) must engage.
    SimStall,
}

/// One scheduled serve-path fault: a [`ServeFaultKind`] active while
/// `from <= elapsed < until` (offsets from server/harness start).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeFaultEpisode {
    /// Activation start (inclusive), as wall-clock offset from start.
    pub from: Duration,
    /// Activation end (exclusive).
    pub until: Duration,
    /// What happens.
    pub kind: ServeFaultKind,
}

impl ServeFaultEpisode {
    /// Is the episode active at wall offset `now`?
    pub fn active(&self, now: Duration) -> bool {
        self.from <= now && now < self.until
    }
}

/// A deterministic schedule of serve-path faults. An empty plan injects
/// nothing and leaves the serving path byte-identical to an uninjected one.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeFaultPlan {
    episodes: Vec<ServeFaultEpisode>,
}

impl ServeFaultPlan {
    /// An empty plan (no serve-path faults).
    pub fn new() -> Self {
        ServeFaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// The scheduled episodes.
    pub fn episodes(&self) -> &[ServeFaultEpisode] {
        &self.episodes
    }

    /// Append an episode.
    pub fn push(&mut self, episode: ServeFaultEpisode) {
        self.episodes.push(episode);
    }

    /// Builder-style [`ServeFaultPlan::push`].
    pub fn with(mut self, episode: ServeFaultEpisode) -> Self {
        self.push(episode);
        self
    }

    /// Builder: ingress mangling (drop + truncate + corrupt + duplicate,
    /// each at `rate`) active over `[from, until)`.
    pub fn mangle_ingress(self, from: Duration, until: Duration, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.with(ServeFaultEpisode {
            from,
            until,
            kind: ServeFaultKind::IngressDrop { rate },
        })
        .with(ServeFaultEpisode {
            from,
            until,
            kind: ServeFaultKind::IngressTruncate { rate },
        })
        .with(ServeFaultEpisode {
            from,
            until,
            kind: ServeFaultKind::IngressCorrupt { rate },
        })
        .with(ServeFaultEpisode {
            from,
            until,
            kind: ServeFaultKind::IngressDuplicate { rate },
        })
    }

    /// Builder: a flood episode from `sources` spoofed origins.
    pub fn flood(self, from: Duration, until: Duration, sources: usize) -> Self {
        self.with(ServeFaultEpisode {
            from,
            until,
            kind: ServeFaultKind::Flood { sources },
        })
    }

    /// Builder: a sim-stall episode.
    pub fn stall(self, from: Duration, until: Duration) -> Self {
        self.with(ServeFaultEpisode {
            from,
            until,
            kind: ServeFaultKind::SimStall,
        })
    }

    /// The first flood episode, if any (the harness shapes its attack
    /// phase from it).
    pub fn flood_episode(&self) -> Option<(Duration, Duration, usize)> {
        self.episodes.iter().find_map(|e| match e.kind {
            ServeFaultKind::Flood { sources } => Some((e.from, e.until, sources)),
            _ => None,
        })
    }

    /// The first sim-stall episode, if any.
    pub fn stall_episode(&self) -> Option<(Duration, Duration)> {
        self.episodes.iter().find_map(|e| match e.kind {
            ServeFaultKind::SimStall => Some((e.from, e.until)),
            _ => None,
        })
    }

    /// Is a sim-stall episode active at wall offset `now`?
    pub fn stalled(&self, now: Duration) -> bool {
        self.episodes
            .iter()
            .any(|e| matches!(e.kind, ServeFaultKind::SimStall) && e.active(now))
    }
}

/// What the ingress injector decided for one arriving datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngressFate {
    /// Process the datagram as received.
    Deliver,
    /// Discard the datagram before decode.
    Drop,
    /// Process the datagram twice.
    Duplicate,
    /// Process only the first `len` bytes.
    Truncate {
        /// Surviving prefix length (strictly less than the original).
        len: usize,
    },
    /// XOR byte `at` with `mask` (non-zero), then process.
    Corrupt {
        /// Index of the corrupted byte.
        at: usize,
        /// Non-zero XOR mask.
        mask: u8,
    },
}

/// Applies the ingress episodes of a [`ServeFaultPlan`] with a seeded,
/// per-shard RNG stream. One injector per shard thread: shard `i` draws
/// from the `serve.ingress/<i>` stream, so shard threads never contend and
/// a run's decisions depend only on (seed, shard, arrival sequence).
#[derive(Debug)]
pub struct ServeFaultInjector {
    episodes: Vec<ServeFaultEpisode>,
    rng: SimRng,
}

/// Combine independent per-episode probabilities (1 − Π(1 − rᵢ)),
/// mirroring the simulation-side injector.
fn combine(rates: impl Iterator<Item = f64>) -> f64 {
    let mut miss = 1.0;
    let mut any = false;
    for r in rates {
        any = true;
        miss *= 1.0 - r.clamp(0.0, 1.0);
    }
    if any {
        1.0 - miss
    } else {
        0.0
    }
}

impl ServeFaultInjector {
    /// Build the injector for shard `shard`, deriving its stream from `rng`.
    pub fn for_shard(plan: &ServeFaultPlan, rng: &SimRng, shard: usize) -> Self {
        ServeFaultInjector {
            episodes: plan.episodes.clone(),
            rng: rng.split_idx("serve.ingress", shard as u64),
        }
    }

    /// True when the plan schedules no ingress episodes at all (the server
    /// can skip the per-datagram consultation entirely).
    pub fn has_ingress(&self) -> bool {
        self.episodes.iter().any(|e| {
            matches!(
                e.kind,
                ServeFaultKind::IngressDrop { .. }
                    | ServeFaultKind::IngressDuplicate { .. }
                    | ServeFaultKind::IngressTruncate { .. }
                    | ServeFaultKind::IngressCorrupt { .. }
            )
        })
    }

    /// Decide the fate of one arriving `len`-byte datagram at wall offset
    /// `now`. Draws only while at least one matching episode is active, so
    /// outside every window the arrival sequence is undisturbed. At most
    /// one fault applies per datagram (drop > truncate > corrupt >
    /// duplicate when several fire on the same draw).
    pub fn ingress_fate(&mut self, now: Duration, len: usize) -> IngressFate {
        let p = |want: fn(&ServeFaultKind) -> Option<f64>| {
            combine(self.episodes.iter().filter_map(|e| {
                if e.active(now) {
                    want(&e.kind)
                } else {
                    None
                }
            }))
        };
        let p_drop = p(|k| match k {
            ServeFaultKind::IngressDrop { rate } => Some(*rate),
            _ => None,
        });
        if p_drop > 0.0 && self.rng.chance(p_drop) {
            return IngressFate::Drop;
        }
        let p_trunc = p(|k| match k {
            ServeFaultKind::IngressTruncate { rate } => Some(*rate),
            _ => None,
        });
        if len > 0 && p_trunc > 0.0 && self.rng.chance(p_trunc) {
            return IngressFate::Truncate {
                len: self.rng.below(len as u64) as usize,
            };
        }
        let p_corrupt = p(|k| match k {
            ServeFaultKind::IngressCorrupt { rate } => Some(*rate),
            _ => None,
        });
        if len > 0 && p_corrupt > 0.0 && self.rng.chance(p_corrupt) {
            return IngressFate::Corrupt {
                at: self.rng.below(len as u64) as usize,
                mask: self.rng.range_inclusive(1, 255) as u8,
            };
        }
        let p_dup = p(|k| match k {
            ServeFaultKind::IngressDuplicate { rate } => Some(*rate),
            _ => None,
        });
        if p_dup > 0.0 && self.rng.chance(p_dup) {
            return IngressFate::Duplicate;
        }
        IngressFate::Deliver
    }
}

/// Hostile-traffic shapes a flood source cycles through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FloodShape {
    /// A runt: fewer than 48 bytes, rejected by the codec.
    Runt,
    /// Uniform garbage, 48..=1200 bytes (decodes to an arbitrary header).
    Garbage,
    /// A well-formed non-client-mode packet (must be ignored, not echoed).
    ForeignMode,
    /// A well-formed client-mode query — rate abuse from a single source;
    /// the admission ladder, not the codec, must contain it.
    AbusiveQuery,
}

/// Deterministic generator of abusive datagrams for one flood source.
/// Source `i` draws from the `serve.flood/<i>` stream.
#[derive(Debug)]
pub struct FloodSource {
    rng: SimRng,
    seq: u64,
}

impl FloodSource {
    /// Build the generator for flood source `source`.
    pub fn new(rng: &SimRng, source: usize) -> Self {
        FloodSource {
            rng: rng.split_idx("serve.flood", source as u64),
            seq: 0,
        }
    }

    /// Fill `buf` with the next hostile datagram; returns its length and
    /// shape. `buf` must hold at least 1200 bytes.
    pub fn next_datagram(&mut self, buf: &mut [u8]) -> (usize, FloodShape) {
        assert!(buf.len() >= 1200, "flood scratch buffer too small");
        self.seq = self.seq.wrapping_add(1);
        let shape = match self.rng.below(4) {
            0 => FloodShape::Runt,
            1 => FloodShape::Garbage,
            2 => FloodShape::ForeignMode,
            _ => FloodShape::AbusiveQuery,
        };
        let len = match shape {
            FloodShape::Runt => {
                let n = self.rng.below(48) as usize;
                self.rng.fill_bytes(&mut buf[..n]);
                n
            }
            FloodShape::Garbage => {
                let n = self.rng.range_inclusive(48, 1200) as usize;
                self.rng.fill_bytes(&mut buf[..n]);
                n
            }
            FloodShape::ForeignMode => {
                self.rng.fill_bytes(&mut buf[..48]);
                // LI 0 / version 4 / a mode that is not 3 (client).
                let mode = [0u8, 1, 2, 4, 5, 6, 7][self.rng.below(7) as usize];
                buf[0] = (4 << 3) | mode;
                48
            }
            FloodShape::AbusiveQuery => {
                buf[..48].fill(0);
                buf[0] = (4 << 3) | 3; // v4 client mode
                                       // A moving transmit nonce so replies (if any) look distinct.
                buf[40..48].copy_from_slice(&self.seq.to_be_bytes());
                48
            }
        };
        (len, shape)
    }
}

/// Deterministic arbitrary-datagram corpus for decoder fuzz replay: `n`
/// pseudo-random datagrams (lengths 0..=`max_len`) from the
/// `serve.fuzz` stream of `seed`. The `e20_abuse` smoke gate replays the
/// corpus through the full classify/respond path; tests replay it through
/// the codec. Same seed ⇒ same corpus, so a failure reproduces exactly.
pub fn fuzz_corpus(seed: u64, n: usize, max_len: usize) -> Vec<Vec<u8>> {
    let mut rng = SimRng::new(seed).split("serve.fuzz");
    (0..n)
        .map(|_| {
            // Bias towards header-sized datagrams so the interesting
            // decode paths (exactly 48, 48±few, huge trailers) all appear.
            let len = match rng.below(4) {
                0 => rng.below(64) as usize,
                1 => 40 + rng.below(16) as usize,
                _ => rng.below(max_len.max(1) as u64) as usize,
            };
            let mut d = vec![0u8; len];
            rng.fill_bytes(&mut d);
            d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_plan_never_draws_and_always_delivers() {
        let plan = ServeFaultPlan::new();
        assert!(plan.is_empty());
        let mut inj = ServeFaultInjector::for_shard(&plan, &SimRng::new(7), 0);
        assert!(!inj.has_ingress());
        for i in 0..100 {
            assert_eq!(inj.ingress_fate(ms(i), 48), IngressFate::Deliver);
        }
    }

    #[test]
    fn windows_gate_ingress_decisions() {
        let plan = ServeFaultPlan::new().with(ServeFaultEpisode {
            from: ms(10),
            until: ms(20),
            kind: ServeFaultKind::IngressDrop { rate: 1.0 },
        });
        let mut inj = ServeFaultInjector::for_shard(&plan, &SimRng::new(7), 0);
        assert!(inj.has_ingress());
        assert_eq!(inj.ingress_fate(ms(9), 48), IngressFate::Deliver);
        assert_eq!(inj.ingress_fate(ms(10), 48), IngressFate::Drop);
        assert_eq!(inj.ingress_fate(ms(19), 48), IngressFate::Drop);
        assert_eq!(inj.ingress_fate(ms(20), 48), IngressFate::Deliver);
    }

    #[test]
    fn truncate_and_corrupt_stay_in_bounds() {
        let plan = ServeFaultPlan::new()
            .with(ServeFaultEpisode {
                from: ms(0),
                until: ms(1000),
                kind: ServeFaultKind::IngressTruncate { rate: 0.5 },
            })
            .with(ServeFaultEpisode {
                from: ms(0),
                until: ms(1000),
                kind: ServeFaultKind::IngressCorrupt { rate: 0.5 },
            });
        let mut inj = ServeFaultInjector::for_shard(&plan, &SimRng::new(3), 1);
        let mut saw_truncate = false;
        let mut saw_corrupt = false;
        for i in 0..500 {
            match inj.ingress_fate(ms(i % 1000), 48) {
                IngressFate::Truncate { len } => {
                    assert!(len < 48);
                    saw_truncate = true;
                }
                IngressFate::Corrupt { at, mask } => {
                    assert!(at < 48);
                    assert_ne!(mask, 0);
                    saw_corrupt = true;
                }
                IngressFate::Deliver => {}
                f => panic!("unexpected fate {f:?}"),
            }
        }
        assert!(saw_truncate && saw_corrupt);
    }

    #[test]
    fn shard_streams_are_independent_and_deterministic() {
        let plan = ServeFaultPlan::new().mangle_ingress(ms(0), ms(1000), 0.3);
        let seed = SimRng::new(0xE20);
        let fates = |shard: usize| {
            let mut inj = ServeFaultInjector::for_shard(&plan, &seed, shard);
            (0..64)
                .map(|i| inj.ingress_fate(ms(i), 256))
                .collect::<Vec<_>>()
        };
        assert_eq!(fates(0), fates(0), "same shard replays identically");
        assert_ne!(fates(0), fates(1), "shards draw independent streams");
    }

    #[test]
    fn plan_queries_find_flood_and_stall() {
        let plan = ServeFaultPlan::new()
            .flood(ms(100), ms(200), 8)
            .stall(ms(300), ms(450));
        assert_eq!(plan.flood_episode(), Some((ms(100), ms(200), 8)));
        assert_eq!(plan.stall_episode(), Some((ms(300), ms(450))));
        assert!(!plan.stalled(ms(299)));
        assert!(plan.stalled(ms(300)));
        assert!(!plan.stalled(ms(450)));
        assert_eq!(ServeFaultPlan::new().flood_episode(), None);
    }

    #[test]
    fn flood_sources_emit_every_shape_deterministically() {
        let rng = SimRng::new(42);
        let mut src = FloodSource::new(&rng, 0);
        let mut buf = [0u8; 1200];
        let mut shapes = std::collections::HashSet::new();
        for _ in 0..64 {
            let (len, shape) = src.next_datagram(&mut buf);
            shapes.insert(shape);
            match shape {
                FloodShape::Runt => assert!(len < 48),
                FloodShape::Garbage => assert!((48..=1200).contains(&len)),
                FloodShape::ForeignMode => {
                    assert_eq!(len, 48);
                    assert_ne!(buf[0] & 0x7, 3, "never client mode");
                }
                FloodShape::AbusiveQuery => {
                    assert_eq!(len, 48);
                    assert_eq!(buf[0] & 0x7, 3);
                }
            }
        }
        assert_eq!(shapes.len(), 4, "all shapes appear in 64 draws");
        // Replay: the same (seed, source) reproduces the same bytes.
        let mut a = FloodSource::new(&rng, 0);
        let mut b = FloodSource::new(&rng, 0);
        let (mut ba, mut bb) = ([0u8; 1200], [0u8; 1200]);
        for _ in 0..16 {
            let (la, sa) = a.next_datagram(&mut ba);
            let (lb, sb) = b.next_datagram(&mut bb);
            assert_eq!((la, sa), (lb, sb));
            assert_eq!(ba[..la], bb[..lb]);
        }
    }

    #[test]
    fn fuzz_corpus_is_reproducible_and_bounded() {
        let a = fuzz_corpus(9, 128, 65536);
        let b = fuzz_corpus(9, 128, 65536);
        assert_eq!(a, b);
        assert_eq!(a.len(), 128);
        assert!(a.iter().all(|d| d.len() <= 65536));
        assert!(
            a.iter().filter(|d| (40..64).contains(&d.len())).count() >= 16,
            "corpus is biased towards header-boundary lengths"
        );
        assert_ne!(fuzz_corpus(10, 128, 65536), a, "seed changes the corpus");
    }
}
