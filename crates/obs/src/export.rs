//! Trace exporters: JSONL (one event object per line) and Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto).

use crate::json::Json;
use crate::trace::{Payload, TraceEvent, GLOBAL_NODE};
use std::io::{self, Write};

fn fs_to_us(fs: u128) -> f64 {
    fs as f64 / 1e9
}

fn event_obj(ev: &TraceEvent) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![
        // u128 femtoseconds exceed the exact range of a JSON number, so the
        // timestamp is exported as a decimal string.
        ("t_fs", Json::str(ev.sim_time_fs.to_string())),
        (
            "node",
            if ev.node == GLOBAL_NODE {
                Json::Null
            } else {
                Json::num(ev.node)
            },
        ),
        ("sub", Json::str(ev.subsystem.name())),
        ("kind", Json::str(ev.kind)),
    ];
    match ev.payload {
        Payload::Instant => {}
        Payload::Span { dur_fs } => pairs.push(("dur_fs", Json::str(dur_fs.to_string()))),
        Payload::Value { value } => pairs.push(("value", Json::num(value as f64))),
        Payload::SpanLink {
            span,
            parent,
            dur_fs,
        } => {
            // Span/parent ids are u64s; like timestamps they are exported
            // as decimal strings so the f64-backed parser round-trips them
            // exactly.
            pairs.push(("span", Json::str(span.to_string())));
            pairs.push(("parent", Json::str(parent.to_string())));
            pairs.push(("dur_fs", Json::str(dur_fs.to_string())));
        }
    }
    Json::obj(pairs)
}

/// Write events as JSON Lines: one self-contained object per line, oldest
/// first. Timestamps are decimal femtosecond strings (exact).
pub fn write_jsonl<W: Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    for ev in events {
        writeln!(w, "{}", event_obj(ev))?;
    }
    Ok(())
}

/// Write events in Chrome `trace_event` format (the JSON-array form).
///
/// Mapping: spans become complete events (`ph:"X"`, `ts` = span start),
/// instants become `ph:"i"`, values become counter samples (`ph:"C"`).
/// `pid` is the node (`0` for global events, which Chrome requires to be a
/// number) and `tid` is the subsystem, so the viewer groups tracks by
/// node → subsystem. Timestamps are microseconds as Chrome expects.
pub fn write_chrome<W: Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    write!(w, "[")?;
    let mut first = true;
    for ev in events {
        let pid = if ev.node == GLOBAL_NODE {
            0
        } else {
            ev.node + 1
        };
        let mut pairs: Vec<(&str, Json)> = vec![
            ("name", Json::str(ev.kind)),
            ("cat", Json::str(ev.subsystem.name())),
            ("pid", Json::num(pid)),
            ("tid", Json::str(ev.subsystem.name())),
        ];
        match ev.payload {
            Payload::Instant => {
                pairs.push(("ph", Json::str("i")));
                pairs.push(("ts", Json::num(fs_to_us(ev.sim_time_fs))));
                pairs.push(("s", Json::str("t")));
            }
            Payload::Span { dur_fs } => {
                let start = ev.sim_time_fs.saturating_sub(dur_fs);
                pairs.push(("ph", Json::str("X")));
                pairs.push(("ts", Json::num(fs_to_us(start))));
                pairs.push(("dur", Json::num(fs_to_us(dur_fs))));
            }
            Payload::Value { value } => {
                pairs.push(("ph", Json::str("C")));
                pairs.push(("ts", Json::num(fs_to_us(ev.sim_time_fs))));
                pairs.push(("args", Json::obj([("value", Json::num(value as f64))])));
            }
            Payload::SpanLink {
                span,
                parent,
                dur_fs,
            } => {
                let start = ev.sim_time_fs.saturating_sub(dur_fs);
                pairs.push(("ph", Json::str("X")));
                pairs.push(("ts", Json::num(fs_to_us(start))));
                pairs.push(("dur", Json::num(fs_to_us(dur_fs))));
                pairs.push((
                    "args",
                    Json::obj([
                        ("span", Json::str(span.to_string())),
                        ("parent", Json::str(parent.to_string())),
                    ]),
                ));
            }
        }
        if !first {
            write!(w, ",")?;
        }
        first = false;
        write!(w, "{}", Json::obj(pairs))?;
    }
    writeln!(w, "]")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Subsystem;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                sim_time_fs: 1_000_000_000, // 1 µs
                node: 0,
                subsystem: Subsystem::Engine,
                kind: "event_fired",
                payload: Payload::Instant,
            },
            TraceEvent {
                sim_time_fs: 5_000_000_000,
                node: 1,
                subsystem: Subsystem::Net,
                kind: "serialize",
                payload: Payload::Span {
                    dur_fs: 2_000_000_000,
                },
            },
            TraceEvent {
                sim_time_fs: 6_000_000_000,
                node: GLOBAL_NODE,
                subsystem: Subsystem::Cluster,
                kind: "round",
                payload: Payload::Value { value: 3 },
            },
            TraceEvent {
                sim_time_fs: 9_000_000_000,
                node: 2,
                subsystem: Subsystem::Cluster,
                kind: "wire",
                payload: Payload::SpanLink {
                    span: 7,
                    parent: 6,
                    dur_fs: 4_000_000_000,
                },
            },
        ]
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let mut buf = Vec::new();
        write_jsonl(&sample_events(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let j = Json::parse(line).expect("each line is a JSON object");
            assert!(j.get("kind").is_some());
            assert!(j.get("t_fs").and_then(Json::as_str).is_some());
        }
        // Span-link line carries span/parent ids as decimal strings.
        let link = Json::parse(lines[3]).unwrap();
        assert_eq!(link.get("span").and_then(Json::as_str), Some("7"));
        assert_eq!(link.get("parent").and_then(Json::as_str), Some("6"));
        assert_eq!(
            link.get("dur_fs").and_then(Json::as_str),
            Some("4000000000")
        );
    }

    #[test]
    fn chrome_export_is_one_json_array() {
        let mut buf = Vec::new();
        write_chrome(&sample_events(), &mut buf).unwrap();
        let j = Json::parse(std::str::from_utf8(&buf).unwrap()).expect("valid JSON");
        let arr = j.as_arr().expect("array");
        assert_eq!(arr.len(), 4);
        // Span event: ts = start (3 µs), dur = 2 µs.
        let span = &arr[1];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(3.0));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(2.0));
        // Counter event carries args.value.
        let ctr = &arr[2];
        assert_eq!(ctr.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(
            ctr.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        // Span-link event: complete event with span/parent ids in args so
        // the causal tree survives the Chrome export.
        let link = &arr[3];
        assert_eq!(link.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(link.get("ts").and_then(Json::as_f64), Some(5.0));
        assert_eq!(link.get("dur").and_then(Json::as_f64), Some(4.0));
        assert_eq!(
            link.get("args")
                .and_then(|a| a.get("span"))
                .and_then(Json::as_str),
            Some("7")
        );
        assert_eq!(
            link.get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Json::as_str),
            Some("6")
        );
    }
}
