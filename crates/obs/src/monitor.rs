//! Online invariant monitors.
//!
//! The paper's guarantees are properties of the *whole run* — every
//! non-faulty clock's accuracy interval must contain reference time,
//! pairwise clock readings must stay within the precision π, amortized
//! clocks never step backwards, and the trigger-to-latch path stays
//! inside the static delay bound used for compensation. PR 2's tracer
//! only let us check these post-hoc from the final `Report`; this module
//! evaluates them **as the run streams** and raises a structured
//! [`Violation`] (with first-offense context) the moment one breaks.
//!
//! Monitors are driven by the simulation layer that owns the data (the
//! cluster snapshot loop, the ε recorder) rather than by re-parsing trace
//! events, so they work with a metrics-only observer too. Each monitor
//! owns a pre-resolved counter `monitor/viol_<name>` and mirrors every
//! violation into the trace as a `viol_<name>` value event, which is how
//! `nti_analyze` finds them in an exported JSONL file.

use crate::metrics::{Counter, MetricKey};
use crate::observer::SimObserver;
use crate::trace::{Subsystem, GLOBAL_NODE};
use crate::Json;
use std::sync::Arc;

/// Which invariants to check, and with what budgets. Budgets are
/// femtoseconds; `None` disables the corresponding monitor.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonitorConfig {
    /// Trigger-to-latch / transmission-delay budget: the measured
    /// stamp-pair delay of a CSP must not exceed this (the static
    /// worst-case bound δ_max the algorithm compensates with).
    pub delay_budget_fs: Option<u128>,
    /// Precision bound π: the worst pairwise clock difference at a
    /// snapshot must stay below this. Opt-in — the simulation does not
    /// derive a closed-form π, so callers supply their own budget.
    pub precision_bound_fs: Option<u128>,
    /// Check accuracy-interval containment (reference ∈ [T−α⁻, T+α⁺])
    /// for every non-faulty node at each snapshot.
    pub check_containment: bool,
    /// Check that amortized clocks never read backwards between
    /// snapshots. Only meaningful when state amortization is on —
    /// instantaneous-step modes legitimately step backwards.
    pub check_monotonic: bool,
}

/// One invariant violation, with the context of the offense.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Monitor name: `"containment"`, `"precision"`, `"monotonic"`,
    /// `"trigger_latency"` or `"holdover_containment"`.
    pub monitor: &'static str,
    /// Simulation time of the offense (femtoseconds).
    pub sim_time_fs: u128,
    /// Offending node, when the invariant is per-node.
    pub node: Option<u32>,
    /// The observed quantity, femtoseconds (signed: containment reports
    /// the excursion of reference time outside the interval).
    pub observed_fs: i128,
    /// The bound it broke, femtoseconds.
    pub bound_fs: i128,
}

impl Violation {
    /// Machine-readable form (fs magnitudes as decimal strings).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("monitor", Json::str(self.monitor)),
            ("t_fs", Json::str(self.sim_time_fs.to_string())),
            (
                "node",
                match self.node {
                    Some(n) => Json::num(n),
                    None => Json::Null,
                },
            ),
            ("observed_fs", Json::str(self.observed_fs.to_string())),
            ("bound_fs", Json::str(self.bound_fs.to_string())),
        ])
    }
}

/// One monitor's live state: its counter plus the first offense seen.
#[derive(Debug)]
struct MonitorState {
    count: Arc<Counter>,
    first: Option<Violation>,
}

impl MonitorState {
    fn hit(&mut self, v: Violation) {
        self.count.inc();
        if self.first.is_none() {
            self.first = Some(v);
        }
    }
}

const CONTAINMENT: usize = 0;
const PRECISION: usize = 1;
const MONOTONIC: usize = 2;
const TRIGGER_LATENCY: usize = 3;
const HOLDOVER_CONTAINMENT: usize = 4;
const NAMES: [&str; 5] = [
    "containment",
    "precision",
    "monotonic",
    "trigger_latency",
    "holdover_containment",
];
const EVENT_KINDS: [&str; 5] = [
    "viol_containment",
    "viol_precision",
    "viol_monotonic",
    "viol_trigger_latency",
    "viol_holdover_containment",
];

/// The online monitor bank. Construct with [`Monitors::new`]; the
/// simulation layers feed it observations and it counts violations into
/// the registry (`monitor/viol_*`), mirrors them into the trace, and
/// keeps the first offense of each kind for the report.
#[derive(Debug)]
pub struct Monitors {
    obs: SimObserver,
    cfg: MonitorConfig,
    states: [MonitorState; 5],
    /// Last sampled clock reading per node (femtoseconds), for the
    /// monotonicity check. `None` until the first sample or after a
    /// crash/restart reset.
    last_clock: Vec<Option<i128>>,
}

impl Monitors {
    /// Build the bank against an **enabled** observer (returns `None` for
    /// a disabled one — the whole monitor path then costs a single
    /// `Option` branch at each call site).
    pub fn new(obs: &SimObserver, nodes: usize, cfg: MonitorConfig) -> Option<Monitors> {
        if !obs.is_enabled() {
            return None;
        }
        let state = |i: usize| MonitorState {
            count: obs
                .counter(MetricKey::global("monitor", EVENT_KINDS[i]))
                .expect("enabled"),
            first: None,
        };
        Some(Monitors {
            obs: obs.clone(),
            cfg,
            states: [
                state(CONTAINMENT),
                state(PRECISION),
                state(MONOTONIC),
                state(TRIGGER_LATENCY),
                state(HOLDOVER_CONTAINMENT),
            ],
            last_clock: vec![None; nodes],
        })
    }

    fn raise(&mut self, which: usize, v: Violation) {
        self.obs.value(
            v.sim_time_fs,
            v.node.unwrap_or(GLOBAL_NODE),
            Subsystem::Cluster,
            EVENT_KINDS[which],
            (v.observed_fs - v.bound_fs).clamp(i64::MIN as i128, i64::MAX as i128) as i64,
        );
        self.states[which].hit(v);
    }

    /// Feed one containment observation: was reference time inside the
    /// node's accuracy interval, and by how much was it off if not?
    /// (`excursion_fs` is ignored when `contained`.)
    pub fn containment(&mut self, t_fs: u128, node: u32, contained: bool, excursion_fs: i128) {
        if !self.cfg.check_containment || contained {
            return;
        }
        self.raise(
            CONTAINMENT,
            Violation {
                monitor: NAMES[CONTAINMENT],
                sim_time_fs: t_fs,
                node: Some(node),
                observed_fs: excursion_fs,
                bound_fs: 0,
            },
        );
    }

    /// Feed one containment observation for a node in **holdover**: its
    /// clock free-runs on the last trimmed rate while the ACU keeps
    /// deteriorating the interval at the bounded-drift rate, so reference
    /// time must *still* lie inside the interval. Tracked as a separate
    /// monitor so holdover quality is attributable independently of the
    /// synchronized-path containment guarantee.
    pub fn holdover_containment(
        &mut self,
        t_fs: u128,
        node: u32,
        contained: bool,
        excursion_fs: i128,
    ) {
        if !self.cfg.check_containment || contained {
            return;
        }
        self.raise(
            HOLDOVER_CONTAINMENT,
            Violation {
                monitor: NAMES[HOLDOVER_CONTAINMENT],
                sim_time_fs: t_fs,
                node: Some(node),
                observed_fs: excursion_fs,
                bound_fs: 0,
            },
        );
    }

    /// Feed one precision observation: the worst pairwise clock
    /// difference across up nodes at a snapshot.
    pub fn precision(&mut self, t_fs: u128, worst_pair_fs: u128) {
        let Some(bound) = self.cfg.precision_bound_fs else {
            return;
        };
        if worst_pair_fs <= bound {
            return;
        }
        self.raise(
            PRECISION,
            Violation {
                monitor: NAMES[PRECISION],
                sim_time_fs: t_fs,
                node: None,
                observed_fs: worst_pair_fs as i128,
                bound_fs: bound as i128,
            },
        );
    }

    /// Feed one sampled clock reading (femtoseconds) for `node`; raises
    /// when an amortized clock reads earlier than its previous sample.
    pub fn clock_sample(&mut self, t_fs: u128, node: u32, clock_fs: i128) {
        let slot = &mut self.last_clock[node as usize];
        let prev = slot.replace(clock_fs);
        if !self.cfg.check_monotonic {
            return;
        }
        if let Some(prev) = prev {
            if clock_fs < prev {
                self.raise(
                    MONOTONIC,
                    Violation {
                        monitor: NAMES[MONOTONIC],
                        sim_time_fs: t_fs,
                        node: Some(node),
                        observed_fs: clock_fs - prev,
                        bound_fs: 0,
                    },
                );
            }
        }
    }

    /// Forget `node`'s last clock sample (call on crash/restart: the
    /// reseeded clock may legitimately read earlier).
    pub fn reset_clock(&mut self, node: u32) {
        if let Some(slot) = self.last_clock.get_mut(node as usize) {
            *slot = None;
        }
    }

    /// Feed one measured CSP stamp-pair delay (trigger-to-latch path).
    pub fn trigger_latency(&mut self, t_fs: u128, node: u32, delay_fs: u128) {
        let Some(budget) = self.cfg.delay_budget_fs else {
            return;
        };
        if delay_fs <= budget {
            return;
        }
        self.raise(
            TRIGGER_LATENCY,
            Violation {
                monitor: NAMES[TRIGGER_LATENCY],
                sim_time_fs: t_fs,
                node: Some(node),
                observed_fs: delay_fs as i128,
                bound_fs: budget as i128,
            },
        );
    }

    /// Total violations across all monitors.
    pub fn total(&self) -> u64 {
        self.states.iter().map(|s| s.count.get()).sum()
    }

    /// Per-monitor `(name, count, first offense)` rows.
    pub fn by_monitor(&self) -> Vec<(&'static str, u64, Option<&Violation>)> {
        NAMES
            .iter()
            .zip(&self.states)
            .map(|(&n, s)| (n, s.count.get(), s.first.as_ref()))
            .collect()
    }

    /// Machine-readable summary: totals and first offenses.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("total", Json::num(self.total() as f64)),
            (
                "monitors",
                Json::obj(NAMES.iter().zip(&self.states).map(|(&n, s)| {
                    (
                        n,
                        Json::obj([
                            ("count", Json::num(s.count.get() as f64)),
                            (
                                "first",
                                s.first.as_ref().map(|v| v.to_json()).unwrap_or(Json::Null),
                            ),
                        ]),
                    )
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(cfg: MonitorConfig) -> (SimObserver, Monitors) {
        let obs = SimObserver::with_trace(64, u32::MAX);
        let m = Monitors::new(&obs, 4, cfg).expect("enabled observer");
        (obs, m)
    }

    #[test]
    fn disabled_observer_yields_no_bank() {
        assert!(Monitors::new(&SimObserver::disabled(), 4, MonitorConfig::default()).is_none());
    }

    #[test]
    fn containment_counts_first_offense() {
        let (obs, mut m) = bank(MonitorConfig {
            check_containment: true,
            ..Default::default()
        });
        m.containment(10, 1, true, 0);
        assert_eq!(m.total(), 0);
        m.containment(20, 1, false, -500);
        m.containment(30, 2, false, 900);
        assert_eq!(m.total(), 2);
        let rows = m.by_monitor();
        let (name, count, first) = rows[0];
        assert_eq!(name, "containment");
        assert_eq!(count, 2);
        let first = first.unwrap();
        assert_eq!(first.sim_time_fs, 20);
        assert_eq!(first.node, Some(1));
        assert_eq!(first.observed_fs, -500);
        // Mirrored into the trace and the registry.
        assert_eq!(
            obs.events()
                .iter()
                .filter(|e| e.kind == "viol_containment")
                .count(),
            2
        );
        let c = obs
            .counter(MetricKey::global("monitor", "viol_containment"))
            .unwrap();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn holdover_containment_is_tracked_separately() {
        let (obs, mut m) = bank(MonitorConfig {
            check_containment: true,
            ..Default::default()
        });
        m.holdover_containment(10, 3, true, 0);
        assert_eq!(m.total(), 0);
        m.holdover_containment(20, 3, false, 700);
        assert_eq!(m.total(), 1);
        // The synchronized-path containment monitor stays clean.
        let rows = m.by_monitor();
        assert_eq!(rows[0], ("containment", 0, None));
        let (name, count, first) = rows[4];
        assert_eq!(name, "holdover_containment");
        assert_eq!(count, 1);
        assert_eq!(first.unwrap().node, Some(3));
        let c = obs
            .counter(MetricKey::global("monitor", "viol_holdover_containment"))
            .unwrap();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn precision_needs_a_bound() {
        let (_obs, mut m) = bank(MonitorConfig::default());
        m.precision(10, u128::MAX);
        assert_eq!(m.total(), 0);
        let (_obs, mut m) = bank(MonitorConfig {
            precision_bound_fs: Some(1_000),
            ..Default::default()
        });
        m.precision(10, 1_000);
        assert_eq!(m.total(), 0);
        m.precision(20, 1_001);
        assert_eq!(m.total(), 1);
    }

    #[test]
    fn monotonic_resets_on_restart() {
        let (_obs, mut m) = bank(MonitorConfig {
            check_monotonic: true,
            ..Default::default()
        });
        m.clock_sample(10, 0, 1_000);
        m.clock_sample(20, 0, 2_000);
        assert_eq!(m.total(), 0);
        m.reset_clock(0);
        m.clock_sample(30, 0, 500); // reseeded after restart: not a violation
        assert_eq!(m.total(), 0);
        m.clock_sample(40, 0, 400); // genuine backwards step
        assert_eq!(m.total(), 1);
    }

    #[test]
    fn trigger_latency_budget() {
        let (obs, mut m) = bank(MonitorConfig {
            delay_budget_fs: Some(5_000),
            ..Default::default()
        });
        m.trigger_latency(10, 3, 5_000);
        assert_eq!(m.total(), 0);
        m.trigger_latency(20, 3, 9_000);
        assert_eq!(m.total(), 1);
        let j = m.to_json();
        assert_eq!(j.get("total").and_then(Json::as_f64), Some(1.0));
        let first = j
            .get("monitors")
            .and_then(|o| o.get("trigger_latency"))
            .and_then(|o| o.get("first"))
            .unwrap();
        assert_eq!(
            first.get("observed_fs").and_then(Json::as_str),
            Some("9000")
        );
        assert_eq!(first.get("bound_fs").and_then(Json::as_str), Some("5000"));
        // The trace event value is the overshoot in fs.
        let evs = obs.events();
        let e = evs
            .iter()
            .find(|e| e.kind == "viol_trigger_latency")
            .unwrap();
        assert_eq!(
            e.payload,
            crate::Payload::Value { value: 4_000 },
            "value is observed - bound"
        );
    }
}
