//! Canonical metric keys for cross-crate subsystems.
//!
//! The engine's metric names used to be string literals scattered across
//! `nti-simcore` and the experiment binaries; any drift between them made a
//! metric silently unreadable. The constructors here are the single source
//! of truth — the engine registers through them and the analysis/benchmark
//! side resolves through them.

use crate::metrics::MetricKey;

/// Subsystem name under which the event engine registers its metrics.
pub const ENGINE_SUBSYSTEM: &str = "engine";

/// Events scheduled (one-shot schedules and each periodic re-arm).
pub fn engine_events_scheduled() -> MetricKey {
    MetricKey::global(ENGINE_SUBSYSTEM, "events_scheduled")
}

/// Events fired (handlers actually run).
pub fn engine_events_fired() -> MetricKey {
    MetricKey::global(ENGINE_SUBSYSTEM, "events_fired")
}

/// Effective cancellations (a cancel of an already-dead id is a no-op).
pub fn engine_events_cancelled() -> MetricKey {
    MetricKey::global(ENGINE_SUBSYSTEM, "events_cancelled")
}

/// Live queue depth sampled after each fired event.
pub fn engine_queue_depth() -> MetricKey {
    MetricKey::global(ENGINE_SUBSYSTEM, "queue_depth")
}

/// Wall-clock handler busy time in nanoseconds.
pub fn engine_handler_busy_ns() -> MetricKey {
    MetricKey::global(ENGINE_SUBSYSTEM, "handler_busy_ns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_keys_are_distinct() {
        let keys = [
            engine_events_scheduled(),
            engine_events_fired(),
            engine_events_cancelled(),
            engine_queue_depth(),
            engine_handler_busy_ns(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
