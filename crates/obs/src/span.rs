//! Causal span tracing.
//!
//! A **span** is one hop of a CSP's life — assembly, TRANSMIT trigger,
//! wire time, RECEIVE trigger, UTCSU latch, interrupt, ISR + dispatch,
//! `accept` — recorded as a [`Payload::SpanLink`] trace event carrying its
//! own id and its parent's id. Threading the ids through the simulation
//! turns the flat event stream into per-packet trees, so an analyzer can
//! decompose exactly where the end-to-end uncertainty ε is spent.
//!
//! Ids are allocated by [`crate::SimObserver::new_span`]: a relaxed
//! fetch-add when an observer is attached, the constant [`SpanId::NONE`]
//! when not — the disabled path is a branch, never an allocation.
//!
//! [`SpanRecord`] and [`SpanForest`] are the offline halves: they rebuild
//! spans from in-memory [`TraceEvent`]s or from exported JSONL (see
//! [`crate::export::write_jsonl`]) and answer structural questions
//! (roots, orphans, chains) for tests and the `nti_analyze` binary.

use crate::json::Json;
use crate::trace::{Payload, TraceEvent, GLOBAL_NODE};
use std::collections::{BTreeMap, HashMap};

/// A causal-span identifier. `0` is reserved for "no span" so the id can
/// be threaded through `Copy` structs without an `Option`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id handed out by a disabled observer.
    pub const NONE: SpanId = SpanId(0);

    /// Is this the null id?
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Is this a real (allocated) id?
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl Default for SpanId {
    fn default() -> Self {
        SpanId::NONE
    }
}

/// One reconstructed span, in owned form (so it can come from a parsed
/// JSONL line as well as from an in-memory [`TraceEvent`]).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// This span's id (non-zero).
    pub span: u64,
    /// Parent span id (0 for a root).
    pub parent: u64,
    /// End of the span, femtoseconds of simulation time.
    pub end_fs: u128,
    /// Span duration in femtoseconds.
    pub dur_fs: u128,
    /// Node the span belongs to (`None` for global records).
    pub node: Option<u32>,
    /// Emitting subsystem name (`"cluster"`, `"net"`, …).
    pub sub: String,
    /// Span kind (`"csp_send"`, `"wire"`, `"latch"`, …).
    pub kind: String,
}

impl SpanRecord {
    /// The span's start time in femtoseconds.
    pub fn start_fs(&self) -> u128 {
        self.end_fs.saturating_sub(self.dur_fs)
    }

    /// Extract a span record from a trace event, if it is a span-link
    /// event.
    pub fn from_event(ev: &TraceEvent) -> Option<SpanRecord> {
        let Payload::SpanLink {
            span,
            parent,
            dur_fs,
        } = ev.payload
        else {
            return None;
        };
        Some(SpanRecord {
            span,
            parent,
            end_fs: ev.sim_time_fs,
            dur_fs,
            node: (ev.node != GLOBAL_NODE).then_some(ev.node),
            sub: ev.subsystem.name().to_string(),
            kind: ev.kind.to_string(),
        })
    }

    /// Parse a span record from one exported JSONL object (the format of
    /// [`crate::export::write_jsonl`]). Returns `None` for non-span lines
    /// or malformed ids.
    pub fn from_json(j: &Json) -> Option<SpanRecord> {
        let span: u64 = j.get("span")?.as_str()?.parse().ok()?;
        let parent: u64 = j.get("parent")?.as_str()?.parse().ok()?;
        if span == 0 {
            return None;
        }
        Some(SpanRecord {
            span,
            parent,
            end_fs: j.get("t_fs")?.as_str()?.parse().ok()?,
            dur_fs: j.get("dur_fs")?.as_str()?.parse().ok()?,
            node: match j.get("node") {
                Some(Json::Null) | None => None,
                Some(n) => Some(n.as_f64()? as u32),
            },
            sub: j.get("sub")?.as_str()?.to_string(),
            kind: j.get("kind")?.as_str()?.to_string(),
        })
    }
}

/// Collect the span records out of an event stream.
pub fn records_from_events(events: &[TraceEvent]) -> Vec<SpanRecord> {
    events.iter().filter_map(SpanRecord::from_event).collect()
}

/// An indexed set of span records: parent/child structure plus the
/// well-formedness questions tests and `nti_analyze` ask.
#[derive(Debug, Default)]
pub struct SpanForest {
    by_id: HashMap<u64, SpanRecord>,
    children: HashMap<u64, Vec<u64>>,
    roots: Vec<u64>,
    orphans: Vec<u64>,
    duplicates: usize,
}

impl SpanForest {
    /// Index a batch of records. A **root** has parent 0; an **orphan**
    /// has a non-zero parent id that is absent from the batch (e.g. lost
    /// to ring overwrite or a subsystem mask). Duplicate ids are counted
    /// and the first occurrence kept.
    pub fn build(records: Vec<SpanRecord>) -> SpanForest {
        let mut f = SpanForest::default();
        for r in records {
            if f.by_id.contains_key(&r.span) {
                f.duplicates += 1;
                continue;
            }
            f.by_id.insert(r.span, r);
        }
        let mut roots = Vec::new();
        let mut orphans = Vec::new();
        for (&id, r) in &f.by_id {
            if r.parent == 0 {
                roots.push(id);
            } else if f.by_id.contains_key(&r.parent) {
                f.children.entry(r.parent).or_default().push(id);
            } else {
                orphans.push(id);
            }
        }
        roots.sort_unstable();
        orphans.sort_unstable();
        for kids in f.children.values_mut() {
            kids.sort_unstable();
        }
        f.roots = roots;
        f.orphans = orphans;
        f
    }

    /// Number of indexed spans.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when the forest holds no spans.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Root span ids (parent 0), ascending.
    pub fn roots(&self) -> &[u64] {
        &self.roots
    }

    /// Orphaned span ids (parent recorded nowhere), ascending.
    pub fn orphans(&self) -> &[u64] {
        &self.orphans
    }

    /// How many records shared an already-seen id.
    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    /// Look up a span by id.
    pub fn get(&self, id: u64) -> Option<&SpanRecord> {
        self.by_id.get(&id)
    }

    /// Children of `id`, ascending (empty if none).
    pub fn children(&self, id: u64) -> &[u64] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Walk parent links from `id` up to its root. The returned path
    /// starts at `id` and ends at the topmost reachable span (the root,
    /// unless the chain is broken by an orphan). Cycles are cut rather
    /// than looped.
    pub fn chain_to_root(&self, id: u64) -> Vec<&SpanRecord> {
        let mut path = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cur = id;
        while let Some(r) = self.by_id.get(&cur) {
            if !seen.insert(cur) {
                break; // cycle guard
            }
            path.push(r);
            if r.parent == 0 {
                break;
            }
            cur = r.parent;
        }
        path
    }

    /// True when every parent link strictly decreases toward a root — i.e.
    /// the forest is acyclic and fully connected (no orphans).
    pub fn is_well_formed(&self) -> bool {
        if !self.orphans.is_empty() {
            return false;
        }
        for &id in self.by_id.keys() {
            let chain = self.chain_to_root(id);
            match chain.last() {
                Some(top) if top.parent == 0 => {}
                _ => return false, // cycle (or broken link)
            }
        }
        true
    }

    /// All span ids of a given kind, ascending.
    pub fn ids_of_kind(&self, kind: &str) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .by_id
            .values()
            .filter(|r| r.kind == kind)
            .map(|r| r.span)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Group span durations (femtoseconds) by kind, each group in record
    /// order of ascending span id — the input to per-hop statistics.
    pub fn durations_by_kind(&self) -> BTreeMap<String, Vec<u128>> {
        let mut ids: Vec<u64> = self.by_id.keys().copied().collect();
        ids.sort_unstable();
        let mut out: BTreeMap<String, Vec<u128>> = BTreeMap::new();
        for id in ids {
            let r = &self.by_id[&id];
            out.entry(r.kind.clone()).or_default().push(r.dur_fs);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Subsystem;

    fn rec(span: u64, parent: u64, end: u128, dur: u128, kind: &str) -> SpanRecord {
        SpanRecord {
            span,
            parent,
            end_fs: end,
            dur_fs: dur,
            node: Some(0),
            sub: "cluster".into(),
            kind: kind.into(),
        }
    }

    #[test]
    fn forest_classifies_roots_orphans_children() {
        let f = SpanForest::build(vec![
            rec(1, 0, 100, 10, "csp_send"),
            rec(2, 1, 200, 100, "wire"),
            rec(3, 2, 250, 50, "accept"),
            rec(9, 8, 300, 1, "lost_parent"),
        ]);
        assert_eq!(f.len(), 4);
        assert_eq!(f.roots(), &[1]);
        assert_eq!(f.orphans(), &[9]);
        assert_eq!(f.children(1), &[2]);
        assert!(!f.is_well_formed());
        let chain = f.chain_to_root(3);
        let kinds: Vec<&str> = chain.iter().map(|r| r.kind.as_str()).collect();
        assert_eq!(kinds, vec!["accept", "wire", "csp_send"]);
    }

    #[test]
    fn forest_detects_cycles() {
        let f = SpanForest::build(vec![rec(1, 2, 100, 10, "a"), rec(2, 1, 200, 10, "b")]);
        assert!(f.orphans().is_empty());
        assert!(!f.is_well_formed());
    }

    #[test]
    fn well_formed_forest_accepted() {
        let f = SpanForest::build(vec![
            rec(1, 0, 100, 10, "csp_send"),
            rec(2, 1, 200, 100, "wire"),
            rec(3, 1, 220, 120, "wire"),
        ]);
        assert!(f.is_well_formed());
        assert_eq!(f.ids_of_kind("wire"), vec![2, 3]);
        assert_eq!(f.durations_by_kind()["wire"], vec![100, 120]);
    }

    #[test]
    fn record_round_trips_event_and_json() {
        let ev = TraceEvent {
            sim_time_fs: 123_456_789_012_345_678_901,
            node: 3,
            subsystem: Subsystem::Utcsu,
            kind: "latch",
            payload: Payload::SpanLink {
                span: u64::MAX,
                parent: 41,
                dur_fs: 77,
            },
        };
        let r = SpanRecord::from_event(&ev).unwrap();
        assert_eq!(r.span, u64::MAX);
        assert_eq!(r.start_fs(), ev.sim_time_fs - 77);
        let mut buf = Vec::new();
        crate::export::write_jsonl(&[ev], &mut buf).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let j = Json::parse(line.trim()).unwrap();
        let r2 = SpanRecord::from_json(&j).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn non_span_json_is_ignored() {
        let j = Json::parse(r#"{"t_fs":"5","node":1,"sub":"net","kind":"x"}"#).unwrap();
        assert!(SpanRecord::from_json(&j).is_none());
    }
}
