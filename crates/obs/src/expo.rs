//! Dependency-free metrics exposition: a Prometheus text renderer and a
//! tiny blocking HTTP/1.0 listener to serve it.
//!
//! The renderer walks a [`Registry`] and emits the Prometheus text
//! format (`# HELP` / `# TYPE` + sample lines); per-node metrics become
//! one family with a `node` label, histograms become summaries
//! (`quantile="…"` + `_sum` + `_count`), and when a
//! [`LiveWindows`](crate::live::LiveWindows) is attached its per-window
//! rates and rolling quantiles are appended as gauges. Output is sorted
//! by metric name so scrapes are byte-stable for a quiescent registry —
//! which is what the golden test pins.
//!
//! [`MetricsServer`] is deliberately primitive: one thread, a
//! non-blocking accept loop, HTTP parsed with `find` — in the spirit of
//! `ntpdsim`'s built-in mode-6 status responder rather than a web
//! framework. It exists so an operator can `curl` a running server, not
//! to serve the public internet; bind it to 127.0.0.1 (the serve-side
//! default) unless you know better.

use crate::json::escape_into;
use crate::live::LiveWindows;
use crate::metrics::{MetricHandle, MetricKey, Registry};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Sanitize a metric-name fragment to Prometheus's `[a-zA-Z0-9_]`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// The exported name for a key: `nti_<subsystem>_<name>`, sanitized.
pub fn prom_name(key: MetricKey) -> String {
    format!("nti_{}_{}", sanitize(key.subsystem), sanitize(key.name))
}

fn labels(key: MetricKey) -> String {
    match key.node {
        Some(n) => format!("{{node=\"{n}\"}}"),
        None => String::new(),
    }
}

fn labels_q(key: MetricKey, q: &str) -> String {
    match key.node {
        Some(n) => format!("{{node=\"{n}\",quantile=\"{q}\"}}"),
        None => format!("{{quantile=\"{q}\"}}"),
    }
}

enum Kind {
    Counter,
    Gauge,
    Summary,
}

struct Family {
    kind: Kind,
    /// `(key, rendered sample lines)` per series.
    series: Vec<String>,
}

fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "0".into()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render `registry` (plus, optionally, the live windowed view) in
/// Prometheus text exposition format. Families are emitted in name
/// order; per-node series within a family in node order (registration
/// order for ties), each preceded by `# HELP` / `# TYPE`.
pub fn render_prometheus(registry: &Registry, live: Option<&LiveWindows>) -> String {
    let mut fams: BTreeMap<String, Family> = BTreeMap::new();
    for (key, handle) in registry.entries() {
        let name = prom_name(key);
        match handle {
            MetricHandle::Counter(c) => {
                let f = fams.entry(name.clone()).or_insert(Family {
                    kind: Kind::Counter,
                    series: Vec::new(),
                });
                f.series
                    .push(format!("{name}{} {}\n", labels(key), c.get()));
            }
            MetricHandle::Gauge(g) => {
                let f = fams.entry(name.clone()).or_insert(Family {
                    kind: Kind::Gauge,
                    series: Vec::new(),
                });
                f.series
                    .push(format!("{name}{} {}\n", labels(key), g.get()));
            }
            MetricHandle::Hist(h) => {
                let f = fams.entry(name.clone()).or_insert(Family {
                    kind: Kind::Summary,
                    series: Vec::new(),
                });
                let mut s = String::new();
                for (q, v) in [
                    ("0.5", h.quantile(0.50)),
                    ("0.9", h.quantile(0.90)),
                    ("0.99", h.quantile(0.99)),
                    ("0.999", h.quantile(0.999)),
                ] {
                    let _ = writeln!(s, "{name}{} {v}", labels_q(key, q));
                }
                let _ = writeln!(s, "{name}_sum{} {}", labels(key), h.sum());
                let _ = writeln!(s, "{name}_count{} {}", labels(key), h.count());
                f.series.push(s);
            }
        }
    }
    let mut out = String::new();
    for (name, fam) in &fams {
        let (kind, help) = match fam.kind {
            Kind::Counter => ("counter", "monotone event count"),
            Kind::Gauge => ("gauge", "last observed value"),
            Kind::Summary => ("summary", "value distribution (ns for *_ns)"),
        };
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for s in &fam.series {
            out.push_str(s);
        }
    }
    if let Some(live) = live {
        let cfg = live.config();
        let _ = writeln!(
            out,
            "# HELP nti_live_window_seconds aggregation window length"
        );
        let _ = writeln!(out, "# TYPE nti_live_window_seconds gauge");
        let _ = writeln!(
            out,
            "nti_live_window_seconds {}",
            fmt_f64(cfg.window.as_secs_f64())
        );
        let _ = writeln!(out, "# HELP nti_live_windows completed windows in ring");
        let _ = writeln!(out, "# TYPE nti_live_windows gauge");
        let _ = writeln!(out, "nti_live_windows {}", live.window_count());
        // Group per-node series under one HELP/TYPE per family — a
        // repeated header for the same name is invalid exposition.
        let mut rate_fams: BTreeMap<String, Vec<(MetricKey, crate::live::RateStats)>> =
            BTreeMap::new();
        for (key, r) in live.counter_rates() {
            rate_fams.entry(prom_name(key)).or_default().push((key, r));
        }
        for (name, series) in &rate_fams {
            let _ = writeln!(out, "# HELP {name}_rate per-second rate, last window");
            let _ = writeln!(out, "# TYPE {name}_rate gauge");
            for (key, r) in series {
                let _ = writeln!(out, "{name}_rate{} {}", labels(*key), fmt_f64(r.last_rate));
            }
            let _ = writeln!(
                out,
                "# HELP {name}_rolling_rate per-second rate, rolling windows"
            );
            let _ = writeln!(out, "# TYPE {name}_rolling_rate gauge");
            for (key, r) in series {
                let _ = writeln!(
                    out,
                    "{name}_rolling_rate{} {}",
                    labels(*key),
                    fmt_f64(r.rolling_rate)
                );
            }
        }
        let mut roll_fams: BTreeMap<String, Vec<(MetricKey, crate::live::RollingQuantiles)>> =
            BTreeMap::new();
        for (key, r) in live.hist_rollups() {
            roll_fams.entry(prom_name(key)).or_default().push((key, r));
        }
        for (name, series) in &roll_fams {
            let _ = writeln!(out, "# HELP {name}_rolling rolling-window quantiles");
            let _ = writeln!(out, "# TYPE {name}_rolling summary");
            for (key, r) in series {
                for (q, v) in [("0.5", r.p50), ("0.99", r.p99), ("0.999", r.p999)] {
                    let _ = writeln!(out, "{name}_rolling{} {v}", labels_q(*key, q));
                }
                let _ = writeln!(out, "{name}_rolling_count{} {}", labels(*key), r.count);
            }
        }
    }
    out
}

/// What the server returns for one request path: `(content_type, body)`.
/// `None` → 404.
pub type Response = Option<(&'static str, String)>;

/// A route handler: maps a request path to a [`Response`]. Runs on the
/// listener thread, so it must not block on anything slow.
pub type Provider = Arc<dyn Fn(&str) -> Response + Send + Sync>;

/// A minimal single-threaded HTTP/1.0 exposition server.
///
/// One background thread accepts connections (non-blocking, 5 ms poll),
/// reads at most one request of at most 4 KiB, answers, and closes.
/// Malformed or slow clients get a 400 or a timeout — never a panic, and
/// never back-pressure on whoever registered the provider (the serve
/// shards share nothing with this thread but atomics).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsServer {
    /// Bind `addr` (port 0 picks a free port — read it back with
    /// [`local_addr`](MetricsServer::local_addr)) and serve `provider`
    /// until [`stop`](MetricsServer::stop) or drop.
    pub fn spawn(addr: SocketAddr, provider: Provider) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("nti-metrics".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Errors talking to one client never take the
                            // listener down.
                            let _ = serve_conn(stream, &provider);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .expect("spawn metrics thread");
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the listener thread and join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

const MAX_REQUEST: usize = 4096;

fn serve_conn(mut stream: TcpStream, provider: &Provider) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_write_timeout(Some(Duration::from_millis(250)))?;
    let mut buf = [0u8; MAX_REQUEST];
    let mut len = 0usize;
    let head_end = loop {
        if len == buf.len() {
            return respond(&mut stream, 400, "text/plain", "request too large");
        }
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            return respond(&mut stream, 400, "text/plain", "truncated request");
        }
        len += n;
        if let Some(p) = find(&buf[..len], b"\r\n\r\n") {
            break p;
        }
        // Tolerate bare-LF clients (netcat et al).
        if let Some(p) = find(&buf[..len], b"\n\n") {
            break p;
        }
    };
    let head = &buf[..head_end];
    let Some(path) = parse_get_path(head) else {
        return respond(&mut stream, 400, "text/plain", "bad request");
    };
    match provider(path) {
        Some((ctype, body)) => respond(&mut stream, 200, ctype, &body),
        None => respond(&mut stream, 404, "text/plain", "not found"),
    }
}

fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Parse `GET <path> HTTP/…` from a request head. Only GET is served.
fn parse_get_path(head: &[u8]) -> Option<&str> {
    let line_end = head
        .iter()
        .position(|&b| b == b'\r' || b == b'\n')
        .unwrap_or(head.len());
    let line = std::str::from_utf8(&head[..line_end]).ok()?;
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    // Strip any query string; routes don't take parameters.
    Some(path.split('?').next().unwrap_or(path))
}

fn respond(stream: &mut TcpStream, code: u16, ctype: &str, body: &str) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal HTTP GET client for tests and bench scrapes: fetch `path`
/// from `addr`, return the response body (headers stripped). Errors on
/// connect failure, timeout, or a non-200 status line.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: nti\r\n\r\n").as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "no header terminator in response",
        ));
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(std::io::Error::other(format!("non-200 response: {status}")));
    }
    Ok(body.to_string())
}

/// Escape a string for embedding in a JSON body (helper re-export for
/// endpoint providers building ad-hoc JSON).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(
            prom_name(MetricKey::global("serve", "kod rate!")),
            "nti_serve_kod_rate_"
        );
    }

    #[test]
    fn renders_all_kinds_sorted() {
        let r = Registry::new();
        r.counter(MetricKey::global("serve", "queries")).add(7);
        r.gauge(MetricKey::node(1, "core", "health")).set(-2);
        r.hist(MetricKey::global("serve", "lat_ns")).record(1000);
        let text = render_prometheus(&r, None);
        let qpos = text.find("nti_serve_queries 7").expect("counter");
        let hpos = text.find("nti_core_health{node=\"1\"} -2").expect("gauge");
        assert!(hpos < qpos, "families sorted by name");
        assert!(text.contains("# TYPE nti_serve_queries counter"));
        assert!(text.contains("# TYPE nti_core_health gauge"));
        assert!(text.contains("# TYPE nti_serve_lat_ns summary"));
        assert!(text.contains("nti_serve_lat_ns{quantile=\"0.99\"}"));
        assert!(text.contains("nti_serve_lat_ns_count 1"));
    }

    #[test]
    fn parse_get_path_handles_garbage() {
        assert_eq!(parse_get_path(b"GET /metrics HTTP/1.1"), Some("/metrics"));
        assert_eq!(
            parse_get_path(b"GET /json?pretty=1 HTTP/1.0"),
            Some("/json")
        );
        assert_eq!(parse_get_path(b"POST /metrics HTTP/1.1"), None);
        assert_eq!(parse_get_path(b"\x00\xffgarbage"), None);
        assert_eq!(parse_get_path(b""), None);
    }
}
