//! The workspace's single quantile implementation.
//!
//! Every consumer of percentiles — `nti_simcore::stats::Summary` over raw
//! `f64` samples, [`crate::hist::Histogram`] over bucketed counts, and the
//! experiment harness tables — resolves ranks through [`rank_for`], so the
//! convention (nearest-rank over `n` ordered observations) is defined in
//! exactly one place.

/// The 0-based index of the `q`-quantile (`0.0 ≤ q ≤ 1.0`) among `n`
/// ordered observations, by the nearest-rank rule used throughout the
/// workspace: `round(q · (n − 1))`.
///
/// Returns `None` for an empty population.
pub fn rank_for(q: f64, n: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * (n - 1) as f64).round() as usize;
    Some(rank.min(n - 1))
}

/// The `p`-th percentile (`0 ≤ p ≤ 100`) of an ascending-sorted slice;
/// `0.0` for an empty slice (matching the pre-existing `Summary` contract).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    match rank_for(p / 100.0, sorted.len()) {
        Some(i) => sorted[i],
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_edges() {
        assert_eq!(rank_for(0.0, 100), Some(0));
        assert_eq!(rank_for(1.0, 100), Some(99));
        assert_eq!(rank_for(0.5, 101), Some(50));
        assert_eq!(rank_for(0.5, 0), None);
        // Out-of-range quantiles clamp instead of indexing out of bounds.
        assert_eq!(rank_for(7.0, 10), Some(9));
        assert_eq!(rank_for(-1.0, 10), Some(0));
    }

    #[test]
    fn percentile_matches_sorted_positions() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 100.0), 100.0);
        // round(0.5 · 99) = 50 (half away from zero), i.e. the 51st value.
        assert_eq!(percentile_sorted(&v, 50.0), 51.0);
        assert_eq!(percentile_sorted(&[], 50.0), 0.0);
    }
}
