//! A tiny JSON value: enough to emit machine-readable experiment records,
//! JSONL trace exports and Chrome `trace_event` files without external
//! dependencies, plus a strict parser so tests can verify exported output
//! is well-formed.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys keep insertion-independent (sorted) order via
/// `BTreeMap`, which makes exports byte-stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (emitted without trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Exact u64 → number (u64 above 2⁵³ loses precision like every JSON
    /// number does; callers exporting femtosecond times should emit them
    /// as strings via [`Json::str`] when exactness matters).
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Fetch a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a complete JSON document (strict: trailing garbage is an
    /// error). Intended for validating exports in tests, not for speed.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }
}

/// Escape a string into a JSON string literal (without quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    write!(f, "null") // JSON has no NaN/Inf
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                escape_into(&mut out, s);
                write!(f, "\"{out}\"")
            }
            Json::Arr(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Json::Obj(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut out = String::with_capacity(k.len());
                    escape_into(&mut out, k);
                    write!(f, "\"{out}\":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut out = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                loop {
                    self.ws();
                    out.push(self.value()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(out));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut out = BTreeMap::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    self.expect(b':')?;
                    self.ws();
                    out.insert(k, self.value()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(out));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 5 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let j = Json::obj([
            ("name", Json::str("ε \"spread\"\n")),
            ("count", Json::num(42u32)),
            (
                "nested",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(1.5)]),
            ),
        ]);
        let text = j.to_string();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, j);
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
