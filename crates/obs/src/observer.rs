//! [`SimObserver`] — the handle threaded through the simulation.
//!
//! An observer is either **disabled** (the default: a `None`, so every
//! instrumentation call is one branch and touches nothing) or **enabled**,
//! in which case it carries a shared [`Registry`] and [`Tracer`].
//! Components that record on hot paths should resolve their metric handles
//! once at attach time (an `Option<MyObsHandles>` of `Arc`s) rather than
//! going through the registry per event.

use crate::export::{write_chrome, write_jsonl};
use crate::metrics::{Counter, Gauge, MetricKey, Registry};
use crate::span::SpanId;
use crate::trace::{Payload, Subsystem, TraceEvent, Tracer};
use crate::Histogram;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Shared observability state: one metric registry plus one trace ring.
#[derive(Debug)]
pub struct ObsCore {
    /// The metric registry.
    pub registry: Registry,
    /// The trace ring.
    pub tracer: Tracer,
    /// Next causal-span id (ids start at 1; 0 means "no span").
    next_span: AtomicU64,
}

/// Default trace-ring capacity when tracing is enabled (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// The observer handle. `Clone` is a refcount bump; a disabled observer is
/// a `None` and costs one branch per instrumentation site.
#[derive(Clone, Debug, Default)]
pub struct SimObserver {
    inner: Option<Arc<ObsCore>>,
}

impl SimObserver {
    /// The no-op observer.
    pub fn disabled() -> SimObserver {
        SimObserver { inner: None }
    }

    /// Metrics only: registry live, tracing masked off entirely.
    pub fn enabled() -> SimObserver {
        SimObserver::with_trace(1, 0)
    }

    /// Metrics plus a trace ring of `capacity` events for the subsystems
    /// in `mask` (see [`Subsystem::bit`] / [`Subsystem::mask_from_spec`]).
    pub fn with_trace(capacity: usize, mask: u32) -> SimObserver {
        SimObserver {
            inner: Some(Arc::new(ObsCore {
                registry: Registry::new(),
                tracer: Tracer::new(capacity, mask),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    /// Is this observer live at all?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared core, when enabled.
    pub fn core(&self) -> Option<&Arc<ObsCore>> {
        self.inner.as_ref()
    }

    /// Get-or-create a counter (None when disabled).
    pub fn counter(&self, key: MetricKey) -> Option<Arc<Counter>> {
        self.inner.as_ref().map(|c| c.registry.counter(key))
    }

    /// Get-or-create a gauge (None when disabled).
    pub fn gauge(&self, key: MetricKey) -> Option<Arc<Gauge>> {
        self.inner.as_ref().map(|c| c.registry.gauge(key))
    }

    /// Get-or-create a histogram (None when disabled).
    pub fn hist(&self, key: MetricKey) -> Option<Arc<Histogram>> {
        self.inner.as_ref().map(|c| c.registry.hist(key))
    }

    /// Is tracing live for `s`? One branch when disabled, one relaxed
    /// load when enabled. Use this to guard any event-payload computation.
    #[inline]
    pub fn tracing(&self, s: Subsystem) -> bool {
        match &self.inner {
            None => false,
            Some(core) => core.tracer.enabled(s),
        }
    }

    /// Record a trace event (no-op when disabled or masked off).
    #[inline]
    pub fn event(
        &self,
        sim_time_fs: u128,
        node: u32,
        subsystem: Subsystem,
        kind: &'static str,
        payload: Payload,
    ) {
        let Some(core) = &self.inner else { return };
        core.tracer.record(TraceEvent {
            sim_time_fs,
            node,
            subsystem,
            kind,
            payload,
        });
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&self, sim_time_fs: u128, node: u32, subsystem: Subsystem, kind: &'static str) {
        self.event(sim_time_fs, node, subsystem, kind, Payload::Instant);
    }

    /// Record a completed span ending at `end_fs`.
    #[inline]
    pub fn span(
        &self,
        end_fs: u128,
        dur_fs: u128,
        node: u32,
        subsystem: Subsystem,
        kind: &'static str,
    ) {
        self.event(end_fs, node, subsystem, kind, Payload::Span { dur_fs });
    }

    /// Record a sampled value.
    #[inline]
    pub fn value(
        &self,
        sim_time_fs: u128,
        node: u32,
        subsystem: Subsystem,
        kind: &'static str,
        value: i64,
    ) {
        self.event(sim_time_fs, node, subsystem, kind, Payload::Value { value });
    }

    /// Allocate a fresh causal-span id (see `crate::span`). Returns
    /// [`SpanId::NONE`] when disabled, so the whole span path is a single
    /// branch plus (when enabled) one relaxed fetch-add — never an
    /// allocation.
    #[inline]
    pub fn new_span(&self) -> SpanId {
        match &self.inner {
            None => SpanId::NONE,
            Some(core) => SpanId(core.next_span.fetch_add(1, Relaxed)),
        }
    }

    /// Record a parent-linked causal span ending at `end_fs`. No-op when
    /// disabled or when `span` is [`SpanId::NONE`] (the id a disabled
    /// observer hands out), so callers can thread ids unconditionally.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span_link(
        &self,
        end_fs: u128,
        dur_fs: u128,
        node: u32,
        subsystem: Subsystem,
        kind: &'static str,
        span: SpanId,
        parent: SpanId,
    ) {
        if span.is_none() {
            return;
        }
        self.event(
            end_fs,
            node,
            subsystem,
            kind,
            Payload::SpanLink {
                span: span.0,
                parent: parent.0,
                dur_fs,
            },
        );
    }

    /// Snapshot the retained trace events (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(core) => core.tracer.events(),
        }
    }

    /// The human-readable metric summary table.
    pub fn summary_table(&self) -> String {
        match &self.inner {
            None => "(observer disabled)\n".to_string(),
            Some(core) => core.registry.summary_table(),
        }
    }

    /// Export the trace to `path`. A `.json` extension selects Chrome
    /// `trace_event` format; anything else writes JSONL.
    pub fn export_trace(&self, path: &Path) -> io::Result<()> {
        let events = self.events();
        let file = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(file);
        let chrome = path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"));
        if chrome {
            write_chrome(&events, &mut w)
        } else {
            write_jsonl(&events, &mut w)
        }
    }
}

/// Convert femtoseconds to whole nanoseconds for histogram recording
/// (saturating; a latency that overflows u64 nanoseconds — 584 years — is
/// clamped).
#[inline]
pub fn fs_to_ns(fs: u128) -> u64 {
    (fs / 1_000_000).min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = SimObserver::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.tracing(Subsystem::Engine));
        obs.instant(1, 0, Subsystem::Engine, "x");
        assert!(obs.events().is_empty());
        assert!(obs.counter(MetricKey::global("a", "b")).is_none());
        assert_eq!(obs.summary_table(), "(observer disabled)\n");
    }

    #[test]
    fn enabled_observer_counts_but_masks_tracing() {
        let obs = SimObserver::enabled();
        assert!(obs.is_enabled());
        assert!(!obs.tracing(Subsystem::Net));
        obs.instant(1, 0, Subsystem::Net, "x");
        assert!(obs.events().is_empty());
        let c = obs.counter(MetricKey::global("net", "frames")).unwrap();
        c.add(5);
        assert!(obs.summary_table().contains("frames"));
    }

    #[test]
    fn traced_observer_records_and_exports() {
        let obs = SimObserver::with_trace(16, Subsystem::Net.bit());
        obs.instant(10, 0, Subsystem::Net, "acquire");
        obs.instant(20, 0, Subsystem::Engine, "masked_off");
        let evs = obs.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "acquire");
    }

    #[test]
    fn fs_to_ns_rounds_down() {
        assert_eq!(fs_to_ns(999_999), 0);
        assert_eq!(fs_to_ns(1_000_000), 1);
        assert_eq!(fs_to_ns(u128::MAX), u64::MAX);
    }
}
