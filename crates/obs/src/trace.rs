//! Structured event tracing.
//!
//! A [`Tracer`] is a bounded in-memory ring of [`TraceEvent`]s. Each event
//! carries the simulation timestamp (femtoseconds), the node it happened
//! on, the [`Subsystem`] that emitted it, a `&'static str` kind tag, and a
//! small [`Payload`]. Events are `Copy` and the ring is pre-allocated, so
//! recording never allocates; per-subsystem enable masks make the
//! fully-disabled path a single relaxed load plus branch.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// The subsystems that can emit trace events. Each maps to one bit of the
/// tracer's enable mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Subsystem {
    /// The discrete-event engine itself (`nti-simcore`).
    Engine = 0,
    /// The network simulation (`nti-netsim`): medium, COMCO, frames.
    Net = 1,
    /// The software substrate (`nti-kernel`): ISRs, dispatch, preemption.
    Kernel = 2,
    /// The UTCSU clock hardware (`nti-utcsu`).
    Utcsu = 3,
    /// The clock-synchronization layer (`nti-core`): rounds, CSPs,
    /// convergence.
    Cluster = 4,
    /// GPS timing sources (`nti-gps`).
    Gps = 5,
    /// Experiment harness / application level.
    App = 6,
    /// Fault injection (`nti-faults`): episode windows, drops, crashes,
    /// rejoins.
    Faults = 7,
    /// The NTP serving layer (`nti-serve`): query handling, KoD refusals,
    /// load-generator activity.
    Serve = 8,
}

impl Subsystem {
    /// All subsystems, in bit order.
    pub const ALL: [Subsystem; 9] = [
        Subsystem::Engine,
        Subsystem::Net,
        Subsystem::Kernel,
        Subsystem::Utcsu,
        Subsystem::Cluster,
        Subsystem::Gps,
        Subsystem::App,
        Subsystem::Faults,
        Subsystem::Serve,
    ];

    /// The enable-mask bit for this subsystem.
    #[inline]
    pub const fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Stable lowercase name (used as the `tid`/label in exports).
    pub const fn name(self) -> &'static str {
        match self {
            Subsystem::Engine => "engine",
            Subsystem::Net => "net",
            Subsystem::Kernel => "kernel",
            Subsystem::Utcsu => "utcsu",
            Subsystem::Cluster => "cluster",
            Subsystem::Gps => "gps",
            Subsystem::App => "app",
            Subsystem::Faults => "faults",
            Subsystem::Serve => "serve",
        }
    }

    /// Parse a comma-separated mask spec such as `"net,kernel"` or `"all"`.
    /// Unknown names are ignored; an empty spec means no subsystems.
    pub fn mask_from_spec(spec: &str) -> u32 {
        let mut mask = 0;
        for part in spec.split(',').map(str::trim) {
            if part.eq_ignore_ascii_case("all") {
                return u32::MAX;
            }
            for s in Subsystem::ALL {
                if part.eq_ignore_ascii_case(s.name()) {
                    mask |= s.bit();
                }
            }
        }
        mask
    }
}

/// The data attached to a [`TraceEvent`]. Kept small and `Copy` so
/// recording is a fixed-size store.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Payload {
    /// A point event with no extra data.
    Instant,
    /// A completed span of simulation time ending at `sim_time_fs`.
    Span {
        /// Span duration in femtoseconds.
        dur_fs: u128,
    },
    /// A sampled value (queue depth, utilization ‰, round number, …).
    Value {
        /// The sampled value.
        value: i64,
    },
    /// A completed span that participates in a causal chain (see
    /// `crate::span`). Like [`Payload::Span`] the event timestamp is the
    /// **end** of the span; additionally the span carries its own id and
    /// the id of its parent so an analyzer can rebuild the tree.
    SpanLink {
        /// This span's id (never 0; 0 is reserved for "no span").
        span: u64,
        /// Parent span id, or 0 for a root span.
        parent: u64,
        /// Span duration in femtoseconds.
        dur_fs: u128,
    },
}

/// One structured trace event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event (femtoseconds since epoch). For spans
    /// this is the **end** of the span.
    pub sim_time_fs: u128,
    /// The node the event belongs to (`u32::MAX` for cluster-global events).
    pub node: u32,
    /// Emitting subsystem.
    pub subsystem: Subsystem,
    /// Event kind, e.g. `"isr_latency"` or `"medium_acquire"`. Static so
    /// recording never allocates.
    pub kind: &'static str,
    /// Event payload.
    pub payload: Payload,
}

/// Node id used for events that do not belong to any single node.
pub const GLOBAL_NODE: u32 = u32::MAX;

/// A bounded ring of trace events with per-subsystem enable masks.
///
/// When the ring is full the **oldest** events are overwritten and
/// [`Tracer::dropped`] counts how many were lost, so a long run keeps the
/// most recent window rather than the initial transient.
#[derive(Debug)]
pub struct Tracer {
    mask: AtomicU32,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    wrapped: bool,
}

impl Tracer {
    /// A tracer holding at most `capacity` events, with the given
    /// subsystem enable mask (see [`Subsystem::bit`]).
    pub fn new(capacity: usize, mask: u32) -> Tracer {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            mask: AtomicU32::new(mask),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                cap: capacity,
                head: 0,
                wrapped: false,
            }),
        }
    }

    /// Is tracing enabled for `s`? One relaxed load + test; this is the
    /// entire cost of a disabled subsystem.
    #[inline]
    pub fn enabled(&self, s: Subsystem) -> bool {
        self.mask.load(Relaxed) & s.bit() != 0
    }

    /// Replace the enable mask.
    pub fn set_mask(&self, mask: u32) {
        self.mask.store(mask, Relaxed);
    }

    /// Record an event if its subsystem is enabled. Allocation-free: the
    /// ring buffer was sized at construction and events are `Copy`.
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        if !self.enabled(ev.subsystem) {
            return;
        }
        self.push(ev);
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        if ring.buf.len() < ring.cap {
            ring.buf.push(ev);
        } else {
            let h = ring.head;
            ring.buf[h] = ev;
            ring.head = (h + 1) % ring.cap;
            ring.wrapped = true;
            drop(ring);
            self.dropped.fetch_add(1, Relaxed);
        }
    }

    /// Number of events lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer ring poisoned").buf.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the retained events in recording order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        if !ring.wrapped {
            ring.buf.clone()
        } else {
            let mut out = Vec::with_capacity(ring.cap);
            out.extend_from_slice(&ring.buf[ring.head..]);
            out.extend_from_slice(&ring.buf[..ring.head]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u128, kind: &'static str) -> TraceEvent {
        TraceEvent {
            sim_time_fs: t,
            node: 0,
            subsystem: Subsystem::Engine,
            kind,
            payload: Payload::Instant,
        }
    }

    #[test]
    fn disabled_subsystem_records_nothing() {
        let t = Tracer::new(8, Subsystem::Net.bit());
        t.record(ev(1, "a"));
        assert!(t.is_empty());
        assert!(!t.enabled(Subsystem::Engine));
        assert!(t.enabled(Subsystem::Net));
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let t = Tracer::new(4, u32::MAX);
        for i in 0..10u128 {
            t.record(ev(i, "tick"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(t.dropped(), 6);
        let times: Vec<u128> = evs.iter().map(|e| e.sim_time_fs).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
    }

    #[test]
    fn mask_spec_parses() {
        assert_eq!(Subsystem::mask_from_spec("all"), u32::MAX);
        assert_eq!(
            Subsystem::mask_from_spec("net, kernel"),
            Subsystem::Net.bit() | Subsystem::Kernel.bit()
        );
        assert_eq!(Subsystem::mask_from_spec(""), 0);
        assert_eq!(Subsystem::mask_from_spec("bogus"), 0);
    }
}
