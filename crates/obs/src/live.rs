//! Windowed aggregation over [`Registry`] metrics: per-second rates,
//! deltas, and rolling quantiles, computed live while writers keep
//! writing.
//!
//! The registry's lifetime atomics answer "how many, ever"; an operator
//! watching a running server needs "how many, *lately*". [`LiveWindows`]
//! closes the gap: a sampler calls [`tick`](LiveWindows::tick) once per
//! fixed-duration wall-clock window, and each tick snapshots every
//! registered counter and histogram, subtracts the previous snapshot, and
//! pushes the delta into a bounded ring of [`Window`]s. Reads over the
//! ring yield per-window rates and rolling p50/p99/p999 over the last K
//! windows.
//!
//! ## Writer isolation
//!
//! Metric writers are never touched: counters and histogram buckets are
//! monotone `AtomicU64`s updated with relaxed ordering, and the sampler
//! only *loads* them. The ring itself is coordinated by a mutex, but that
//! mutex is only ever contended between the sampler and scrape readers —
//! the hot path records straight into the registry's atomics exactly as
//! it did before a `LiveWindows` existed, so attaching one costs writers
//! nothing.
//!
//! ## Torn-state safety
//!
//! A histogram's `count()`/`sum()` aggregates can be transiently out of
//! step with its buckets while a writer is mid-`record`. Window deltas
//! therefore never consult the aggregates: each delta is computed
//! bucket-wise from [`Histogram::sparse`] snapshots (per-bucket counts
//! are individually monotone, so per-bucket deltas are non-negative) and
//! the window's count is *derived* as the sum of its bucket deltas.
//! Counter deltas are single monotone loads, so rates are non-negative
//! and bounded by what writers actually wrote.

use crate::json::Json;
use crate::metrics::{Counter, Gauge, MetricHandle, MetricKey, Registry};
use crate::quantile::rank_for;
use crate::Histogram;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shape of the window ring.
#[derive(Clone, Copy, Debug)]
pub struct LiveConfig {
    /// Nominal duration of one window (the sampler's tick cadence; actual
    /// window spans are measured from the supplied tick times).
    pub window: Duration,
    /// Windows retained in the ring.
    pub windows: usize,
    /// Windows merged for rolling rates and quantiles (≤ `windows`).
    pub rolling: usize,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            window: Duration::from_secs(1),
            windows: 60,
            rolling: 5,
        }
    }
}

/// A sparse histogram delta: per-bucket counts recorded during one
/// window, keyed by bucket upper edge.
#[derive(Clone, Debug, Default)]
pub struct SparseDelta {
    /// `(bucket_upper_edge, count)` in increasing edge order.
    pub buckets: Vec<(u64, u64)>,
    /// Sum of the bucket counts (derived, never read from the histogram's
    /// own total — see the module docs on torn-state safety).
    pub count: u64,
}

/// One completed aggregation window.
#[derive(Clone, Debug)]
pub struct Window {
    /// 1-based sequence number (monotone across the ring's lifetime).
    pub seq: u64,
    /// Window start on the sampler's clock (nanoseconds).
    pub start_ns: u64,
    /// Window end on the sampler's clock (nanoseconds).
    pub end_ns: u64,
    /// Counter deltas, aligned with the tracked-counter adoption order.
    /// Shorter than the current tracked set when counters were registered
    /// after this window closed.
    pub counter_deltas: Vec<u64>,
    /// Gauge values at window close, aligned with tracked gauges.
    pub gauge_values: Vec<i64>,
    /// Histogram deltas, aligned with tracked histograms.
    pub hist_deltas: Vec<SparseDelta>,
}

impl Window {
    /// Window span in seconds (never zero: a degenerate span is clamped
    /// so rates stay finite).
    pub fn span_s(&self) -> f64 {
        ((self.end_ns - self.start_ns) as f64 / 1e9).max(1e-9)
    }
}

struct TrackedCounter {
    key: MetricKey,
    handle: Arc<Counter>,
    last: u64,
}

struct TrackedGauge {
    key: MetricKey,
    handle: Arc<Gauge>,
}

struct TrackedHist {
    key: MetricKey,
    handle: Arc<Histogram>,
    last: Vec<(u64, u64)>,
}

struct LiveState {
    counters: Vec<TrackedCounter>,
    gauges: Vec<TrackedGauge>,
    hists: Vec<TrackedHist>,
    /// Registry entries consumed so far (the registry is append-only).
    registry_seen: usize,
    ring: VecDeque<Window>,
    last_tick_ns: Option<u64>,
    ticks: u64,
}

/// Per-second rate summary for one counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateStats {
    /// Delta over the most recent window.
    pub last_delta: u64,
    /// Per-second rate over the most recent window.
    pub last_rate: f64,
    /// Per-second rate over the rolling window set.
    pub rolling_rate: f64,
}

/// Rolling quantiles for one histogram over the rolling window set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RollingQuantiles {
    /// Values recorded in the rolling windows.
    pub count: u64,
    /// Rolling p50 (bucket upper edge).
    pub p50: u64,
    /// Rolling p99.
    pub p99: u64,
    /// Rolling p999.
    pub p999: u64,
    /// Highest non-empty bucket edge in the rolling windows.
    pub max: u64,
}

/// The windowed aggregator. Share as `Arc<LiveWindows>`: one sampler
/// thread ticks it, any number of scrape threads read it.
pub struct LiveWindows {
    cfg: LiveConfig,
    state: Mutex<LiveState>,
}

impl std::fmt::Debug for LiveWindows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveWindows")
            .field("window", &self.cfg.window)
            .field("windows", &self.cfg.windows)
            .finish()
    }
}

/// Subtract two sparse snapshots of the same histogram (`cur` newer).
/// Both are sorted by bucket edge and per-bucket counts are monotone, so
/// a two-pointer walk yields the exact per-bucket deltas.
fn sparse_sub(cur: &[(u64, u64)], old: &[(u64, u64)]) -> SparseDelta {
    let mut out = Vec::new();
    let mut count = 0u64;
    let mut j = 0usize;
    for &(edge, c) in cur {
        while j < old.len() && old[j].0 < edge {
            j += 1;
        }
        let prev = if j < old.len() && old[j].0 == edge {
            old[j].1
        } else {
            0
        };
        let d = c.saturating_sub(prev);
        if d > 0 {
            out.push((edge, d));
            count += d;
        }
    }
    SparseDelta {
        buckets: out,
        count,
    }
}

impl LiveWindows {
    /// An empty aggregator. Metrics are adopted from the registry lazily
    /// at each tick (with the current value as baseline, so lifetime
    /// totals accumulated before adoption never show up as a first-window
    /// spike).
    pub fn new(cfg: LiveConfig) -> LiveWindows {
        assert!(cfg.windows > 0, "need at least one window");
        assert!(cfg.rolling > 0, "need at least one rolling window");
        LiveWindows {
            cfg,
            state: Mutex::new(LiveState {
                counters: Vec::new(),
                gauges: Vec::new(),
                hists: Vec::new(),
                registry_seen: 0,
                ring: VecDeque::new(),
                last_tick_ns: None,
                ticks: 0,
            }),
        }
    }

    /// The configured shape.
    pub fn config(&self) -> LiveConfig {
        self.cfg
    }

    /// Completed windows currently in the ring.
    pub fn window_count(&self) -> usize {
        self.state.lock().expect("live state").ring.len()
    }

    /// Close a window: adopt any newly registered metrics, snapshot every
    /// tracked metric, and push the deltas since the previous tick into
    /// the ring. `now_ns` is the sampler's monotonic clock. The first
    /// tick only establishes baselines (no window is produced).
    pub fn tick(&self, registry: &Registry, now_ns: u64) {
        let mut st = self.state.lock().expect("live state");
        for (key, handle) in registry.entries_from(st.registry_seen) {
            st.registry_seen += 1;
            match handle {
                MetricHandle::Counter(c) => {
                    let last = c.get();
                    st.counters.push(TrackedCounter {
                        key,
                        handle: c,
                        last,
                    });
                }
                MetricHandle::Gauge(g) => st.gauges.push(TrackedGauge { key, handle: g }),
                MetricHandle::Hist(h) => {
                    let last = h.sparse();
                    st.hists.push(TrackedHist {
                        key,
                        handle: h,
                        last,
                    });
                }
            }
        }
        let Some(start_ns) = st.last_tick_ns else {
            st.last_tick_ns = Some(now_ns);
            return;
        };
        st.last_tick_ns = Some(now_ns);
        st.ticks += 1;
        let seq = st.ticks;
        let counter_deltas = st
            .counters
            .iter_mut()
            .map(|t| {
                let cur = t.handle.get();
                let d = cur.saturating_sub(t.last);
                t.last = cur;
                d
            })
            .collect();
        let gauge_values = st.gauges.iter().map(|t| t.handle.get()).collect();
        let hist_deltas = st
            .hists
            .iter_mut()
            .map(|t| {
                let cur = t.handle.sparse();
                let d = sparse_sub(&cur, &t.last);
                t.last = cur;
                d
            })
            .collect();
        st.ring.push_back(Window {
            seq,
            start_ns,
            end_ns: now_ns.max(start_ns + 1),
            counter_deltas,
            gauge_values,
            hist_deltas,
        });
        while st.ring.len() > self.cfg.windows {
            st.ring.pop_front();
        }
    }

    fn rolling_span_s(windows: &[&Window]) -> f64 {
        windows.iter().map(|w| w.span_s()).sum::<f64>().max(1e-9)
    }

    /// Per-counter rate summaries, in adoption order. Empty until the
    /// second tick closes the first window.
    pub fn counter_rates(&self) -> Vec<(MetricKey, RateStats)> {
        let st = self.state.lock().expect("live state");
        let Some(newest) = st.ring.back() else {
            return Vec::new();
        };
        let rolling: Vec<&Window> = st.ring.iter().rev().take(self.cfg.rolling).collect();
        let roll_span = Self::rolling_span_s(&rolling);
        st.counters
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let last_delta = newest.counter_deltas.get(i).copied().unwrap_or(0);
                let roll_delta: u64 = rolling
                    .iter()
                    .map(|w| w.counter_deltas.get(i).copied().unwrap_or(0))
                    .sum();
                (
                    t.key,
                    RateStats {
                        last_delta,
                        last_rate: last_delta as f64 / newest.span_s(),
                        rolling_rate: roll_delta as f64 / roll_span,
                    },
                )
            })
            .collect()
    }

    /// Gauge values as of the most recent window close, in adoption
    /// order. Empty until the first window completes.
    pub fn gauge_values(&self) -> Vec<(MetricKey, i64)> {
        let st = self.state.lock().expect("live state");
        let Some(newest) = st.ring.back() else {
            return Vec::new();
        };
        st.gauges
            .iter()
            .enumerate()
            .filter_map(|(i, t)| newest.gauge_values.get(i).map(|&v| (t.key, v)))
            .collect()
    }

    /// The rate summary for one counter key, if tracked and windowed.
    pub fn rate(&self, key: MetricKey) -> Option<RateStats> {
        self.counter_rates()
            .into_iter()
            .find(|(k, _)| *k == key)
            .map(|(_, r)| r)
    }

    /// Rolling quantiles per histogram, in adoption order. Histograms
    /// with no recordings in the rolling windows are skipped.
    pub fn hist_rollups(&self) -> Vec<(MetricKey, RollingQuantiles)> {
        let st = self.state.lock().expect("live state");
        let rolling: Vec<&Window> = st.ring.iter().rev().take(self.cfg.rolling).collect();
        if rolling.is_empty() {
            return Vec::new();
        }
        st.hists
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
                for w in &rolling {
                    if let Some(d) = w.hist_deltas.get(i) {
                        for &(edge, c) in &d.buckets {
                            *merged.entry(edge).or_insert(0) += c;
                        }
                    }
                }
                let total: u64 = merged.values().sum();
                if total == 0 {
                    return None;
                }
                let q = |q: f64| -> u64 {
                    let Some(rank) = rank_for(q, total as usize) else {
                        return 0;
                    };
                    let mut cum = 0u64;
                    for (&edge, &c) in &merged {
                        cum += c;
                        if cum > rank as u64 {
                            return edge;
                        }
                    }
                    merged.keys().next_back().copied().unwrap_or(0)
                };
                Some((
                    t.key,
                    RollingQuantiles {
                        count: total,
                        p50: q(0.50),
                        p99: q(0.99),
                        p999: q(0.999),
                        max: merged.keys().next_back().copied().unwrap_or(0),
                    },
                ))
            })
            .collect()
    }

    /// The rolling quantiles for one histogram key, if any values landed
    /// in the rolling windows.
    pub fn rolling_quantiles(&self, key: MetricKey) -> Option<RollingQuantiles> {
        self.hist_rollups()
            .into_iter()
            .find(|(k, _)| *k == key)
            .map(|(_, r)| r)
    }

    /// Machine-readable snapshot: window shape, per-counter rates, and
    /// per-histogram rolling quantiles.
    pub fn to_json(&self) -> Json {
        let rates = self
            .counter_rates()
            .into_iter()
            .map(|(k, r)| {
                Json::obj([
                    ("metric", key_json(k)),
                    ("last_delta", Json::num(r.last_delta as f64)),
                    ("last_rate", Json::num(r.last_rate)),
                    ("rolling_rate", Json::num(r.rolling_rate)),
                ])
            })
            .collect();
        let hists = self
            .hist_rollups()
            .into_iter()
            .map(|(k, r)| {
                Json::obj([
                    ("metric", key_json(k)),
                    ("count", Json::num(r.count as f64)),
                    ("p50", Json::num(r.p50 as f64)),
                    ("p99", Json::num(r.p99 as f64)),
                    ("p999", Json::num(r.p999 as f64)),
                    ("max", Json::num(r.max as f64)),
                ])
            })
            .collect();
        let gauges = self
            .gauge_values()
            .into_iter()
            .map(|(k, v)| Json::obj([("metric", key_json(k)), ("value", Json::num(v as f64))]))
            .collect();
        Json::obj([
            ("window_ms", Json::num(self.cfg.window.as_millis() as f64)),
            ("windows", Json::num(self.window_count() as f64)),
            ("rolling", Json::num(self.cfg.rolling as f64)),
            ("rates", Json::Arr(rates)),
            ("gauges", Json::Arr(gauges)),
            ("hist_rolling", Json::Arr(hists)),
        ])
    }
}

fn key_json(k: MetricKey) -> Json {
    match k.node {
        Some(n) => Json::str(format!("n{n}/{}/{}", k.subsystem, k.name)),
        None => Json::str(format!("{}/{}", k.subsystem, k.name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> u64 {
        n * 1_000_000
    }

    #[test]
    fn first_tick_is_baseline_only() {
        let r = Registry::new();
        r.counter(MetricKey::global("s", "c")).add(100);
        let live = LiveWindows::new(LiveConfig::default());
        live.tick(&r, 0);
        assert_eq!(live.window_count(), 0);
        assert!(live.counter_rates().is_empty());
        // Pre-adoption lifetime total never shows as a delta.
        live.tick(&r, ms(1000));
        let rates = live.counter_rates();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].1.last_delta, 0);
    }

    #[test]
    fn counter_deltas_and_rates_per_window() {
        let r = Registry::new();
        let c = r.counter(MetricKey::global("s", "c"));
        let live = LiveWindows::new(LiveConfig {
            window: Duration::from_secs(1),
            windows: 4,
            rolling: 2,
        });
        live.tick(&r, 0);
        c.add(10);
        live.tick(&r, ms(1000));
        c.add(30);
        live.tick(&r, ms(2000));
        let (key, rs) = live.counter_rates().pop().expect("tracked");
        assert_eq!(key, MetricKey::global("s", "c"));
        assert_eq!(rs.last_delta, 30);
        assert!((rs.last_rate - 30.0).abs() < 1e-6);
        // Rolling over both windows: 40 over 2 s.
        assert!((rs.rolling_rate - 20.0).abs() < 1e-6);
    }

    #[test]
    fn ring_is_bounded() {
        let r = Registry::new();
        let live = LiveWindows::new(LiveConfig {
            window: Duration::from_secs(1),
            windows: 3,
            rolling: 2,
        });
        for t in 0..10u64 {
            live.tick(&r, ms(t * 1000));
        }
        assert_eq!(live.window_count(), 3);
    }

    #[test]
    fn rolling_quantiles_track_recent_values_only() {
        let r = Registry::new();
        let h = r.hist(MetricKey::global("s", "lat_ns"));
        let live = LiveWindows::new(LiveConfig {
            window: Duration::from_secs(1),
            windows: 8,
            rolling: 1,
        });
        live.tick(&r, 0);
        for _ in 0..100 {
            h.record(10);
        }
        live.tick(&r, ms(1000));
        let rq = live
            .rolling_quantiles(MetricKey::global("s", "lat_ns"))
            .expect("window 1");
        assert_eq!(rq.count, 100);
        assert!(rq.p50 <= 16, "p50 {} near 10", rq.p50);
        // New window, much slower values: rolling=1 forgets the old ones.
        for _ in 0..100 {
            h.record(100_000);
        }
        live.tick(&r, ms(2000));
        let rq = live
            .rolling_quantiles(MetricKey::global("s", "lat_ns"))
            .expect("window 2");
        assert_eq!(rq.count, 100);
        assert!(rq.p50 >= 90_000, "p50 {} near 100k", rq.p50);
    }

    #[test]
    fn late_registered_metrics_are_adopted() {
        let r = Registry::new();
        let live = LiveWindows::new(LiveConfig::default());
        live.tick(&r, 0);
        let c = r.counter(MetricKey::global("late", "c"));
        c.add(5);
        live.tick(&r, ms(1000));
        // Adopted at tick 2 with baseline 5 — no window yet counts it.
        assert_eq!(
            live.rate(MetricKey::global("late", "c"))
                .unwrap()
                .last_delta,
            0
        );
        c.add(7);
        live.tick(&r, ms(2000));
        assert_eq!(
            live.rate(MetricKey::global("late", "c"))
                .unwrap()
                .last_delta,
            7
        );
    }

    #[test]
    fn sparse_sub_is_bucketwise() {
        let old = [(8u64, 3u64), (32, 1)];
        let cur = [(8u64, 5u64), (16, 2), (32, 1)];
        let d = sparse_sub(&cur, &old);
        assert_eq!(d.buckets, vec![(8, 2), (16, 2)]);
        assert_eq!(d.count, 4);
    }
}
