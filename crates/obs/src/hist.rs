//! Log-linear HDR-style histograms over `u64` values.
//!
//! The layout follows HdrHistogram's log-linear scheme: the first
//! `2^sub_bucket_bits` values get exact unit buckets; beyond that, each
//! power-of-two range is split into `2^sub_bucket_bits` equal sub-buckets,
//! so the relative quantization error is bounded by `2^-sub_bucket_bits`
//! everywhere. Counts are `AtomicU64`s updated with relaxed ordering —
//! recording is lock-free and allocation-free, and histograms merge
//! exactly (bucket-wise addition), which makes per-node / per-shard
//! instances combinable into cluster-wide distributions.

use crate::quantile::rank_for;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Default sub-bucket resolution: 2⁶ = 64 sub-buckets per octave, i.e. a
/// relative quantization error ≤ 1/64 ≈ 1.6 %.
pub const DEFAULT_SUB_BUCKET_BITS: u32 = 6;

/// A mergeable log-linear histogram of `u64` values (full 64-bit range).
#[derive(Debug)]
pub struct Histogram {
    sub_bucket_bits: u32,
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram with the default resolution (≤ 1.6 % relative error).
    pub fn new() -> Histogram {
        Histogram::with_sub_bucket_bits(DEFAULT_SUB_BUCKET_BITS)
    }

    /// A histogram with `2^bits` sub-buckets per octave (`1 ≤ bits ≤ 16`).
    pub fn with_sub_bucket_bits(bits: u32) -> Histogram {
        assert!((1..=16).contains(&bits), "sub_bucket_bits out of range");
        let buckets = Self::bucket_count(bits);
        let counts = (0..buckets).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        Histogram {
            sub_bucket_bits: bits,
            counts: counts.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_count(bits: u32) -> usize {
        // Linear region: 2^bits buckets; log region: one group of 2^bits
        // sub-buckets per exponent bits..=63.
        ((64 - bits) as usize + 1) << bits
    }

    /// The relative quantization error bound of this histogram.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.sub_bucket_bits) as f64
    }

    /// Bucket index for a value.
    #[inline]
    fn index(&self, v: u64) -> usize {
        let n = self.sub_bucket_bits;
        if v < (1 << n) {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - n;
        ((((shift + 1) as usize) << n) + ((v >> shift) as usize - (1 << n)))
            .min(self.counts.len() - 1)
    }

    /// Inclusive upper edge of bucket `i` (the value reported for
    /// quantiles landing in the bucket — the "highest equivalent value").
    fn bucket_upper(&self, i: usize) -> u64 {
        let n = self.sub_bucket_bits;
        let group = i >> n;
        if group == 0 {
            return (i & ((1 << n) - 1)) as u64;
        }
        let shift = (group - 1) as u32;
        let within = (i & ((1usize << n) - 1)) as u64;
        let lower = ((1u64 << n) + within) << shift;
        lower + ((1u64 << shift) - 1)
    }

    /// Record one value. Lock-free and allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record a value `n` times.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[self.index(v)].fetch_add(n, Relaxed);
        self.total.fetch_add(n, Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total.load(Relaxed)
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// The value at quantile `q` (`0.0 ≤ q ≤ 1.0`): the upper edge of the
    /// bucket holding the nearest-rank observation, clamped to the exact
    /// observed `[min, max]`. Within `relative_error()` of the true
    /// empirical quantile. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        let Some(rank) = rank_for(q, total as usize) else {
            return 0;
        };
        let mut cum: u64 = 0;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Relaxed);
            if c == 0 {
                continue;
            }
            cum += c;
            if cum > rank as u64 {
                return self.bucket_upper(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Merge another histogram into this one (exact bucket-wise addition;
    /// both must share the same resolution). Associative and commutative.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.sub_bucket_bits, other.sub_bucket_bits,
            "cannot merge histograms of different resolution"
        );
        for (a, b) in self.counts.iter().zip(other.counts.iter()) {
            let v = b.load(Relaxed);
            if v != 0 {
                a.fetch_add(v, Relaxed);
            }
        }
        self.total.fetch_add(other.total.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// A deep copy (snapshot) of the current state.
    pub fn snapshot(&self) -> Histogram {
        let out = Histogram::with_sub_bucket_bits(self.sub_bucket_bits);
        out.merge(self);
        out
    }

    /// Iterate `(bucket_upper_edge, count)` for non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c.load(Relaxed) {
                0 => None,
                n => Some((self.bucket_upper(i), n)),
            })
    }

    /// Sparse snapshot: `(bucket_upper_edge, count)` pairs for every
    /// non-empty bucket, in increasing edge order. Each bucket count is a
    /// single relaxed load of a monotonically increasing atomic, so two
    /// snapshots of a concurrently-written histogram subtract bucket-wise
    /// to non-negative deltas — the property the windowed aggregator
    /// (`crate::live`) builds on. (The `count()`/`sum()` aggregates may be
    /// transiently out of step with the buckets mid-`record`; a consumer
    /// that needs internal consistency derives the count from the bucket
    /// sum instead.)
    pub fn sparse(&self) -> Vec<(u64, u64)> {
        self.nonzero_buckets().collect()
    }

    /// The standard quantile line used by summary tables:
    /// `(p50, p90, p99, p999, max)`.
    pub fn quantile_line(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
            self.max(),
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // In the exact region the quantile is the true value.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
    }

    #[test]
    fn index_is_monotone_and_in_bounds() {
        let h = Histogram::with_sub_bucket_bits(5);
        let mut last = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let i = h.index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(i < h.counts.len());
            last = i;
            v = v.saturating_mul(3) / 2 + 1;
        }
        let _ = h.index(u64::MAX);
    }

    #[test]
    fn bucket_upper_bounds_value() {
        let h = Histogram::with_sub_bucket_bits(5);
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            100,
            1000,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX / 3,
        ] {
            let up = h.bucket_upper(h.index(v));
            assert!(up >= v, "upper {up} < value {v}");
            if v > 32 {
                let rel = (up - v) as f64 / v as f64;
                assert!(rel <= h.relative_error() + 1e-12, "rel err {rel} at {v}");
            }
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let true_p50 = 5000.0;
        assert!((p50 as f64 - true_p50).abs() / true_p50 < 0.02, "p50 {p50}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.02, "p99 {p99}");
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn merge_is_exact_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(100, 3);
        b.record_n(100, 5);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 9);
        assert_eq!(a.min(), 7);
        assert_eq!(a.sum(), 100 * 8 + 7);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
