//! The typed metric registry.
//!
//! Metrics are identified by a [`MetricKey`] — `(node, subsystem, name)`
//! with `&'static str` labels — and interned on first registration: asking
//! for the same key twice returns a handle to the same underlying metric.
//! Handles are `Arc`s around atomics ([`Counter`], [`Gauge`]) or a
//! [`Histogram`], so the hot path touches no locks; the registry lock is
//! taken only at registration and reporting time.

use crate::hist::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Identity of one metric. Ordering (node, then subsystem, then name)
/// drives the summary-table sort.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Owning node, or `None` for cluster-global metrics.
    pub node: Option<u32>,
    /// Subsystem label, e.g. `"engine"` or `"net"`.
    pub subsystem: &'static str,
    /// Metric name, e.g. `"events_fired"` or `"isr_latency_ns"`.
    pub name: &'static str,
}

impl MetricKey {
    /// A cluster-global key.
    pub fn global(subsystem: &'static str, name: &'static str) -> MetricKey {
        MetricKey {
            node: None,
            subsystem,
            name,
        }
    }

    /// A per-node key.
    pub fn node(node: u32, subsystem: &'static str, name: &'static str) -> MetricKey {
        MetricKey {
            node: Some(node),
            subsystem,
            name,
        }
    }

    fn render(&self) -> String {
        match self.node {
            Some(n) => format!("n{n}/{}/{}", self.subsystem, self.name),
            None => format!("*/{}/{}", self.subsystem, self.name),
        }
    }
}

/// Compact interned id for a registered metric (index into the registry).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MetricId(pub u32);

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-value gauge (signed, so it can hold offsets and drifts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Hist(Arc<Histogram>),
}

/// A kind-tagged handle to one registered metric, as enumerated by
/// [`Registry::entries`]. Holding one keeps the metric alive; reading
/// through it is the same lock-free path the owner uses.
#[derive(Debug, Clone)]
pub enum MetricHandle {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// A last-value gauge.
    Gauge(Arc<Gauge>),
    /// A log-linear histogram.
    Hist(Arc<Histogram>),
}

impl From<&Metric> for MetricHandle {
    fn from(m: &Metric) -> MetricHandle {
        match m {
            Metric::Counter(c) => MetricHandle::Counter(Arc::clone(c)),
            Metric::Gauge(g) => MetricHandle::Gauge(Arc::clone(g)),
            Metric::Hist(h) => MetricHandle::Hist(Arc::clone(h)),
        }
    }
}

/// The metric registry: interns [`MetricKey`]s and owns the metric
/// storage. Cheap to share (`Arc` it, or keep it inside an
/// [`crate::observer::SimObserver`]).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    by_key: BTreeMap<MetricKey, MetricId>,
    entries: Vec<(MetricKey, Metric)>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn intern<F: FnOnce() -> Metric>(&self, key: MetricKey, make: F) -> (MetricId, Metric) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(&id) = inner.by_key.get(&key) {
            return (id, inner.entries[id.0 as usize].1.clone());
        }
        let id = MetricId(inner.entries.len() as u32);
        let metric = make();
        inner.by_key.insert(key, id);
        inner.entries.push((key, metric.clone()));
        (id, metric)
    }

    /// Get-or-create the counter for `key`.
    pub fn counter(&self, key: MetricKey) -> Arc<Counter> {
        match self
            .intern(key, || Metric::Counter(Arc::new(Counter::default())))
            .1
        {
            Metric::Counter(c) => c,
            other => panic!("metric {} already registered as {other:?}", key.render()),
        }
    }

    /// Get-or-create the gauge for `key`.
    pub fn gauge(&self, key: MetricKey) -> Arc<Gauge> {
        match self
            .intern(key, || Metric::Gauge(Arc::new(Gauge::default())))
            .1
        {
            Metric::Gauge(g) => g,
            other => panic!("metric {} already registered as {other:?}", key.render()),
        }
    }

    /// Get-or-create the histogram for `key`. Histograms conventionally
    /// record **nanoseconds** for latency metrics (name them `*_ns`).
    pub fn hist(&self, key: MetricKey) -> Arc<Histogram> {
        match self
            .intern(key, || Metric::Hist(Arc::new(Histogram::new())))
            .1
        {
            Metric::Hist(h) => h,
            other => panic!("metric {} already registered as {other:?}", key.render()),
        }
    }

    /// The interned id for `key`, if it has been registered.
    pub fn id_of(&self, key: MetricKey) -> Option<MetricId> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .by_key
            .get(&key)
            .copied()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry poisoned").entries.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up an already-registered histogram.
    pub fn find_hist(&self, key: MetricKey) -> Option<Arc<Histogram>> {
        let inner = self.inner.lock().expect("registry poisoned");
        let id = *inner.by_key.get(&key)?;
        match &inner.entries[id.0 as usize].1 {
            Metric::Hist(h) => Some(h.clone()),
            _ => None,
        }
    }

    /// Look up an already-registered counter.
    pub fn find_counter(&self, key: MetricKey) -> Option<Arc<Counter>> {
        let inner = self.inner.lock().expect("registry poisoned");
        let id = *inner.by_key.get(&key)?;
        match &inner.entries[id.0 as usize].1 {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        }
    }

    /// Enumerate every registered metric in registration order. The
    /// registry is append-only — an entry's position never changes — so an
    /// incremental consumer (the windowed aggregator) can resume from the
    /// index where its last enumeration stopped: see
    /// [`Registry::entries_from`].
    pub fn entries(&self) -> Vec<(MetricKey, MetricHandle)> {
        self.entries_from(0)
    }

    /// [`Registry::entries`] starting at index `start` — the entries
    /// registered since a previous enumeration of length `start`.
    pub fn entries_from(&self, start: usize) -> Vec<(MetricKey, MetricHandle)> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .entries
            .iter()
            .skip(start)
            .map(|(k, m)| (*k, MetricHandle::from(m)))
            .collect()
    }

    /// Merge every per-node histogram named `(subsystem, name)` — plus the
    /// global one, if any — into a single cluster-wide histogram.
    pub fn merged_hist(&self, subsystem: &str, name: &str) -> Histogram {
        let out = Histogram::new();
        let inner = self.inner.lock().expect("registry poisoned");
        for (key, metric) in &inner.entries {
            if key.subsystem == subsystem && key.name == name {
                if let Metric::Hist(h) = metric {
                    out.merge(h);
                }
            }
        }
        out
    }

    /// Render the human-readable summary table: counters and gauges first,
    /// then one `p50/p90/p99/p999/max` quantile line per histogram.
    /// Histogram values are printed as recorded (by convention,
    /// nanoseconds for `*_ns` metrics).
    pub fn summary_table(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut scalars: Vec<(MetricKey, String)> = Vec::new();
        let mut hists: Vec<(MetricKey, &Histogram)> = Vec::new();
        for (key, metric) in &inner.entries {
            match metric {
                Metric::Counter(c) => scalars.push((*key, c.get().to_string())),
                Metric::Gauge(g) => scalars.push((*key, g.get().to_string())),
                Metric::Hist(h) => hists.push((*key, h)),
            }
        }
        scalars.sort_by_key(|(k, _)| *k);
        hists.sort_by_key(|(k, _)| *k);

        let mut out = String::new();
        if !scalars.is_empty() {
            let w = scalars
                .iter()
                .map(|(k, _)| k.render().len())
                .max()
                .unwrap_or(0);
            let _ = writeln!(out, "{:w$}  value", "metric", w = w);
            for (k, v) in &scalars {
                let _ = writeln!(out, "{:w$}  {v}", k.render(), w = w);
            }
        }
        if !hists.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let w = hists
                .iter()
                .map(|(k, _)| k.render().len())
                .max()
                .unwrap_or(0)
                .max(9);
            let _ = writeln!(
                out,
                "{:w$}  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "histogram",
                "count",
                "p50",
                "p90",
                "p99",
                "p999",
                "max",
                w = w
            );
            for (k, h) in &hists {
                let (p50, p90, p99, p999, max) = h.quantile_line();
                let _ = writeln!(
                    out,
                    "{:w$}  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    k.render(),
                    h.count(),
                    p50,
                    p90,
                    p99,
                    p999,
                    max,
                    w = w
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics registered)\n");
        }
        out
    }

    /// Machine-readable dump of every metric.
    pub fn to_json(&self) -> Json {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut arr = Vec::with_capacity(inner.entries.len());
        for (key, metric) in &inner.entries {
            let mut obj: Vec<(&str, Json)> = vec![
                (
                    "node",
                    match key.node {
                        Some(n) => Json::num(n),
                        None => Json::Null,
                    },
                ),
                ("subsystem", Json::str(key.subsystem)),
                ("name", Json::str(key.name)),
            ];
            match metric {
                Metric::Counter(c) => {
                    obj.push(("type", Json::str("counter")));
                    obj.push(("value", Json::num(c.get() as f64)));
                }
                Metric::Gauge(g) => {
                    obj.push(("type", Json::str("gauge")));
                    obj.push(("value", Json::num(g.get() as f64)));
                }
                Metric::Hist(h) => {
                    let (p50, p90, p99, p999, max) = h.quantile_line();
                    obj.push(("type", Json::str("hist")));
                    obj.push(("count", Json::num(h.count() as f64)));
                    obj.push(("mean", Json::num(h.mean())));
                    obj.push(("p50", Json::num(p50 as f64)));
                    obj.push(("p90", Json::num(p90 as f64)));
                    obj.push(("p99", Json::num(p99 as f64)));
                    obj.push(("p999", Json::num(p999 as f64)));
                    obj.push(("max", Json::num(max as f64)));
                }
            }
            arr.push(Json::obj(obj));
        }
        Json::Arr(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter(MetricKey::global("engine", "events"));
        let b = r.counter(MetricKey::global("engine", "events"));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.id_of(MetricKey::global("engine", "events")),
            Some(MetricId(0))
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter(MetricKey::global("net", "x"));
        let _ = r.gauge(MetricKey::global("net", "x"));
    }

    #[test]
    fn merged_hist_combines_nodes() {
        let r = Registry::new();
        r.hist(MetricKey::node(0, "kernel", "isr_ns")).record(100);
        r.hist(MetricKey::node(1, "kernel", "isr_ns")).record(300);
        let m = r.merged_hist("kernel", "isr_ns");
        assert_eq!(m.count(), 2);
        assert_eq!(m.max(), 300);
    }

    #[test]
    fn summary_table_mentions_everything() {
        let r = Registry::new();
        r.counter(MetricKey::global("engine", "events_fired"))
            .add(7);
        r.gauge(MetricKey::node(2, "net", "util_permille")).set(412);
        r.hist(MetricKey::node(0, "kernel", "isr_ns")).record(50);
        let t = r.summary_table();
        assert!(t.contains("events_fired"));
        assert!(t.contains("util_permille"));
        assert!(t.contains("isr_ns"));
        assert!(t.contains("p999"));
    }
}
