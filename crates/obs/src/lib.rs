//! # nti-obs — sim-wide observability
//!
//! The observability subsystem shared by every crate in the NTI
//! reproduction:
//!
//! * [`metrics`] — a typed metric registry: [`Counter`]s, [`Gauge`]s and
//!   log-linear HDR [`Histogram`]s keyed by `(node, subsystem, name)`,
//!   interned to compact [`MetricId`]s. Recording is lock-free
//!   (`AtomicU64` relaxed) and histograms merge exactly across nodes and
//!   shards.
//! * [`trace`] — structured event tracing: a bounded pre-allocated ring of
//!   `Copy` [`TraceEvent`]s with per-[`Subsystem`] enable masks; the
//!   fully-disabled path costs one branch.
//! * [`export`] — trace exporters for JSONL and Chrome `trace_event`
//!   format (`chrome://tracing` / Perfetto).
//! * [`quantile`] — the workspace's **single** quantile implementation
//!   (nearest-rank); `nti_simcore::stats` and the experiment harness both
//!   delegate here.
//! * [`observer`] — [`SimObserver`], the cheap clonable handle threaded
//!   through the engine, network, kernel, UTCSU and cluster layers.
//! * [`span`] — causal span tracing: parent-linked [`SpanId`]s threaded
//!   through a CSP's life, plus [`SpanForest`] for offline
//!   reconstruction.
//! * [`monitor`] — online invariant [`Monitors`] (containment, precision,
//!   monotonicity, trigger-latency budget) raising structured
//!   [`Violation`]s.
//! * [`json`] — a dependency-free JSON value used by the exporters and
//!   the experiment harness.
//! * [`live`] — windowed aggregation over the registry: a bounded ring
//!   of fixed-duration windows yielding per-second rates and rolling
//!   p50/p99/p999 without disturbing metric writers.
//! * [`expo`] — dependency-free exposition: a Prometheus text renderer
//!   and a tiny single-threaded HTTP listener ([`MetricsServer`]).
//!
//! This crate sits at the bottom of the workspace dependency graph and
//! depends on nothing outside `std`.

#![warn(missing_docs)]

pub mod expo;
pub mod export;
pub mod hist;
pub mod json;
pub mod keys;
pub mod live;
pub mod metrics;
pub mod monitor;
pub mod observer;
pub mod quantile;
pub mod span;
pub mod trace;

pub use expo::{http_get, render_prometheus, MetricsServer};
pub use hist::Histogram;
pub use json::Json;
pub use live::{LiveConfig, LiveWindows};
pub use metrics::{Counter, Gauge, MetricHandle, MetricId, MetricKey, Registry};
pub use monitor::{MonitorConfig, Monitors, Violation};
pub use observer::{fs_to_ns, ObsCore, SimObserver};
pub use span::{records_from_events, SpanForest, SpanId, SpanRecord};
pub use trace::{Payload, Subsystem, TraceEvent, Tracer, GLOBAL_NODE};
