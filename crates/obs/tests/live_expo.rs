//! Integration tests for the live telemetry plane in `nti-obs`: windowed
//! aggregation under concurrent writers, the golden Prometheus text
//! exposition, and the exposition endpoint's behavior under hostile
//! HTTP.

use nti_obs::expo::Provider;
use nti_obs::{
    http_get, render_prometheus, Json, LiveConfig, LiveWindows, MetricKey, MetricsServer, Registry,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// One simulated second per tick, in ns (tick times are caller-supplied,
/// so the test is deterministic and wall-clock-free).
const TICK_NS: u64 = 1_000_000_000;

/// Writers hammer a counter and a histogram while the sampler ticks
/// windows concurrently. The aggregation must never observe torn state:
/// every window delta non-negative and bounded by the final total, and
/// the cumulative deltas must exactly reconcile with the lifetime totals
/// once the writers stop.
#[test]
fn windowed_aggregation_is_consistent_under_concurrent_writers() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 200_000;
    let reg = Registry::new();
    let live = LiveWindows::new(LiveConfig {
        window: Duration::from_millis(1),
        windows: 10_000, // retain everything: the test reconciles totals
        rolling: 10_000,
    });
    let ckey = MetricKey::global("test", "events");
    let hkey = MetricKey::global("test", "lat_ns");
    let counter = reg.counter(ckey);
    let hist = reg.hist(hkey);
    // Baseline tick before any writes, so window deltas cover everything.
    live.tick(&reg, 0);

    let mut tick_no = 0u64;
    let mut delta_sum = 0u64;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    counter.inc();
                    // Spread values over buckets so snapshots race with
                    // writes to many different bucket atomics.
                    hist.record(1 + ((w as u64) << 32 | i) % 100_000);
                }
            });
        }
        // Sample concurrently with the writers.
        loop {
            tick_no += 1;
            live.tick(&reg, tick_no * TICK_NS);
            let total_now = counter.get();
            for (key, r) in live.counter_rates() {
                assert_eq!(key, ckey);
                assert!(
                    r.last_delta <= WRITERS as u64 * PER_WRITER,
                    "window delta bounded by the writers' lifetime total"
                );
                assert!(r.last_rate >= 0.0 && r.last_rate.is_finite());
                assert!(r.rolling_rate >= 0.0 && r.rolling_rate.is_finite());
                delta_sum += r.last_delta;
            }
            // Note: comparing rq.count against hist.count() here would be
            // racy — a writer can have bumped a bucket (visible to the
            // tick's snapshot) but not yet the lifetime total. The exact
            // reconciliation happens after the writers join.
            if let Some(rq) = live.rolling_quantiles(hkey) {
                assert!(
                    rq.count <= WRITERS as u64 * PER_WRITER,
                    "rolling count bounded by everything the writers will ever record"
                );
                if rq.count > 0 {
                    assert!(rq.p50 <= rq.p99 && rq.p99 <= rq.p999 && rq.p999 <= rq.max);
                }
            }
            if total_now == WRITERS as u64 * PER_WRITER {
                break;
            }
            std::thread::yield_now();
        }
    });

    // Writers are done; one final window picks up the tail.
    tick_no += 1;
    live.tick(&reg, tick_no * TICK_NS);
    for (_, r) in live.counter_rates() {
        delta_sum += r.last_delta;
    }
    assert_eq!(
        delta_sum,
        WRITERS as u64 * PER_WRITER,
        "window deltas reconcile exactly with the lifetime counter"
    );
    let rq = live.rolling_quantiles(hkey).expect("hist adopted");
    assert_eq!(
        rq.count,
        hist.count(),
        "rolling histogram deltas reconcile exactly with the lifetime count"
    );
}

/// The Prometheus exposition for a fixed registry + live view is pinned
/// byte-for-byte: name sanitization, `node` labels, HELP/TYPE pairs,
/// family sort order, summary quantiles, and the appended live section.
#[test]
fn prometheus_exposition_golden() {
    let reg = Registry::new();
    reg.counter(MetricKey::global("serve", "queries")).add(42);
    reg.counter(MetricKey::node(0, "serve", "shard_queries"))
        .add(30);
    reg.counter(MetricKey::node(1, "serve", "shard_queries"))
        .add(12);
    reg.gauge(MetricKey::global("status", "nodes_down")).set(1);
    let h = reg.hist(MetricKey::global("serve", "stage_total_ns"));
    h.record(1000);

    let live = LiveWindows::new(LiveConfig {
        window: Duration::from_secs(1),
        windows: 4,
        rolling: 2,
    });
    live.tick(&reg, 0); // baseline
    reg.counter(MetricKey::global("serve", "queries")).add(8);
    h.record(1000);
    live.tick(&reg, TICK_NS); // one 1 s window: queries +8, hist +1

    let text = render_prometheus(&reg, Some(&live));
    let golden = "\
# HELP nti_serve_queries monotone event count
# TYPE nti_serve_queries counter
nti_serve_queries 50
# HELP nti_serve_shard_queries monotone event count
# TYPE nti_serve_shard_queries counter
nti_serve_shard_queries{node=\"0\"} 30
nti_serve_shard_queries{node=\"1\"} 12
# HELP nti_serve_stage_total_ns value distribution (ns for *_ns)
# TYPE nti_serve_stage_total_ns summary
nti_serve_stage_total_ns{quantile=\"0.5\"} 1000
nti_serve_stage_total_ns{quantile=\"0.9\"} 1000
nti_serve_stage_total_ns{quantile=\"0.99\"} 1000
nti_serve_stage_total_ns{quantile=\"0.999\"} 1000
nti_serve_stage_total_ns_sum 2000
nti_serve_stage_total_ns_count 2
# HELP nti_status_nodes_down last observed value
# TYPE nti_status_nodes_down gauge
nti_status_nodes_down 1
# HELP nti_live_window_seconds aggregation window length
# TYPE nti_live_window_seconds gauge
nti_live_window_seconds 1
# HELP nti_live_windows completed windows in ring
# TYPE nti_live_windows gauge
nti_live_windows 1
# HELP nti_serve_queries_rate per-second rate, last window
# TYPE nti_serve_queries_rate gauge
nti_serve_queries_rate 8
# HELP nti_serve_queries_rolling_rate per-second rate, rolling windows
# TYPE nti_serve_queries_rolling_rate gauge
nti_serve_queries_rolling_rate 8
# HELP nti_serve_shard_queries_rate per-second rate, last window
# TYPE nti_serve_shard_queries_rate gauge
nti_serve_shard_queries_rate{node=\"0\"} 0
nti_serve_shard_queries_rate{node=\"1\"} 0
# HELP nti_serve_shard_queries_rolling_rate per-second rate, rolling windows
# TYPE nti_serve_shard_queries_rolling_rate gauge
nti_serve_shard_queries_rolling_rate{node=\"0\"} 0
nti_serve_shard_queries_rolling_rate{node=\"1\"} 0
# HELP nti_serve_stage_total_ns_rolling rolling-window quantiles
# TYPE nti_serve_stage_total_ns_rolling summary
nti_serve_stage_total_ns_rolling{quantile=\"0.5\"} 1007
nti_serve_stage_total_ns_rolling{quantile=\"0.99\"} 1007
nti_serve_stage_total_ns_rolling{quantile=\"0.999\"} 1007
nti_serve_stage_total_ns_rolling_count 1
";
    assert_eq!(text, golden);
}

/// `/json`-style output from the registry and live view parses with the
/// crate's own strict JSON parser.
#[test]
fn registry_and_live_json_parse_strictly() {
    let reg = Registry::new();
    reg.counter(MetricKey::global("serve", "queries")).add(3);
    reg.gauge(MetricKey::node(2, "status", "nodes_total"))
        .set(4);
    reg.hist(MetricKey::global("serve", "rtt_ns")).record(777);
    let live = LiveWindows::new(LiveConfig::default());
    live.tick(&reg, 0);
    live.tick(&reg, TICK_NS);
    Json::parse(&reg.to_json().to_string()).expect("registry JSON is strict");
    Json::parse(&live.to_json().to_string()).expect("live JSON is strict");
}

fn test_provider() -> Provider {
    Arc::new(|path: &str| match path {
        "/metrics" => Some(("text/plain", "nti_up 1\n".to_string())),
        _ => None,
    })
}

/// Malformed HTTP — binary garbage, truncation, oversized requests,
/// wrong methods — must never take the endpoint down: a well-formed GET
/// afterwards still answers.
#[test]
fn endpoint_survives_hostile_http() {
    let provider = test_provider();
    let server = match MetricsServer::spawn("127.0.0.1:0".parse().expect("addr"), provider) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("skipping: loopback sockets unavailable in this sandbox ({e})");
            return;
        }
    };
    let addr = server.local_addr();
    let timeout = Duration::from_secs(2);

    let hostile: Vec<Vec<u8>> = vec![
        b"\x00\xff\xfe\xfd\r\n\r\n".to_vec(),
        b"POST /metrics HTTP/1.1\r\n\r\n".to_vec(),
        b"GET\r\n\r\n".to_vec(),
        vec![0x41; 8192],            // oversized, no header terminator
        b"GET /metrics HT".to_vec(), // truncated, then closed
        Vec::new(),                  // connect and close immediately
    ];
    for (i, req) in hostile.iter().enumerate() {
        let mut s = TcpStream::connect_timeout(&addr, timeout).expect("connect");
        s.set_read_timeout(Some(timeout)).expect("timeout");
        let _ = s.write_all(req);
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink); // 400, or nothing — just no hang
        drop(s);
        // The listener must still answer a good request after each one.
        let body = http_get(addr, "/metrics", timeout)
            .unwrap_or_else(|e| panic!("good request after hostile #{i} failed: {e}"));
        assert_eq!(body, "nti_up 1\n");
    }

    // Unknown path → 404 surfaces as an error from the strict client.
    assert!(http_get(addr, "/nope", timeout).is_err());
    server.stop();
}
