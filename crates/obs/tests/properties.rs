//! Property tests for the observability primitives: histogram merge
//! algebra, quantile error bounds, and the cost contract of a disabled
//! observer (records nothing, allocates nothing).

use nti_obs::quantile::rank_for;
use nti_obs::{Histogram, MetricKey, Payload, SimObserver, SpanId, Subsystem};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting allocator: lets the disabled-path test assert zero allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Full state equality: counts, extremes, and the bucket contents.
fn assert_hist_eq(a: &Histogram, b: &Histogram) {
    assert_eq!(a.count(), b.count());
    assert_eq!(a.sum(), b.sum());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    let ab: Vec<(u64, u64)> = a.nonzero_buckets().collect();
    let bb: Vec<(u64, u64)> = b.nonzero_buckets().collect();
    assert_eq!(ab, bb);
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 48), 0..200)
}

proptest! {
    /// Merging is commutative: a⊎b and b⊎a are the same histogram.
    #[test]
    fn merge_commutative(xs in arb_values(), ys in arb_values()) {
        let ab = hist_of(&xs);
        ab.merge(&hist_of(&ys));
        let ba = hist_of(&ys);
        ba.merge(&hist_of(&xs));
        assert_hist_eq(&ab, &ba);
    }

    /// Merging is associative: (a⊎b)⊎c equals a⊎(b⊎c).
    #[test]
    fn merge_associative(xs in arb_values(), ys in arb_values(), zs in arb_values()) {
        let left = hist_of(&xs);
        left.merge(&hist_of(&ys));
        left.merge(&hist_of(&zs));
        let bc = hist_of(&ys);
        bc.merge(&hist_of(&zs));
        let right = hist_of(&xs);
        right.merge(&bc);
        assert_hist_eq(&left, &right);
    }

    /// Merging equals recording the concatenation.
    #[test]
    fn merge_is_concatenation(xs in arb_values(), ys in arb_values()) {
        let merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        assert_hist_eq(&merged, &hist_of(&all));
    }

    /// Every reported quantile brackets the true empirical quantile within
    /// the histogram's one-bucket relative error (and never leaves the
    /// recorded [min, max] range).
    #[test]
    fn quantile_bounds_empirical(mut xs in proptest::collection::vec(0u64..(1 << 48), 1..200),
                                 qi in 0usize..5) {
        let q = [0.0, 0.5, 0.9, 0.99, 1.0][qi];
        let h = hist_of(&xs);
        xs.sort_unstable();
        let truth = xs[rank_for(q, xs.len()).expect("nonempty")];
        let got = h.quantile(q);
        let err = h.relative_error();
        prop_assert!(got >= xs[0] && got <= *xs.last().expect("nonempty"));
        // The reported value is the upper edge of the bucket holding a
        // value ranked at least as high as the truth: it can exceed the
        // truth by one bucket's relative width, and can never undershoot
        // by more than that same width.
        let upper = truth as f64 * (1.0 + err) + 1.0;
        let lower = truth as f64 * (1.0 - err) - 1.0;
        prop_assert!((got as f64) <= upper, "q={q}: got {got} > allowed {upper} (truth {truth})");
        prop_assert!((got as f64) >= lower, "q={q}: got {got} < allowed {lower} (truth {truth})");
    }
}

fn arb_span_event() -> impl Strategy<Value = nti_obs::TraceEvent> {
    let kinds: &[&'static str] = &[
        "csp_send",
        "xmit_trigger",
        "wire",
        "rcv_trigger",
        "latch",
        "interrupt",
        "isr_dispatch",
        "accept",
    ];
    (
        (
            any::<u128>(),
            0u32..65, // 64 maps to GLOBAL_NODE below
            0usize..Subsystem::ALL.len(),
            0usize..kinds.len(),
        ),
        (any::<u64>(), any::<u64>(), any::<u128>()),
    )
        .prop_map(
            move |((t, node, sub, kind), (span, parent, dur))| nti_obs::TraceEvent {
                sim_time_fs: t,
                node: if node == 64 {
                    nti_obs::GLOBAL_NODE
                } else {
                    node
                },
                subsystem: Subsystem::ALL[sub],
                kind: kinds[kind],
                payload: Payload::SpanLink {
                    span: span.max(1), // 0 is the reserved null id
                    parent,
                    dur_fs: dur,
                },
            },
        )
}

proptest! {
    /// Span export round-trips exactly through the JSONL writer and the
    /// JSON parser: every id, timestamp and duration — u64/u128 values
    /// beyond f64's exact range included — survives because they are
    /// written as decimal strings.
    #[test]
    fn span_export_round_trips_through_json(evs in proptest::collection::vec(arb_span_event(), 1..40)) {
        let mut buf = Vec::new();
        nti_obs::export::write_jsonl(&evs, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), evs.len());
        for (line, ev) in lines.iter().zip(&evs) {
            let j = nti_obs::Json::parse(line).expect("exported line parses");
            let parsed = nti_obs::SpanRecord::from_json(&j).expect("span line yields a record");
            let direct = nti_obs::SpanRecord::from_event(ev).expect("span payload");
            prop_assert_eq!(parsed, direct);
        }
    }
}

/// The fully-disabled observer records nothing — and the hot-path calls
/// (`event`, counter/hist resolution misses) perform zero heap allocation.
#[test]
fn disabled_observer_records_nothing_and_allocates_nothing() {
    let obs = SimObserver::disabled();
    assert!(!obs.is_enabled());
    assert!(obs.counter(MetricKey::global("x", "y")).is_none());

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        obs.event(
            i as u128,
            0,
            Subsystem::Engine,
            "tick",
            Payload::Value { value: i as i64 },
        );
        obs.instant(i as u128, 1, Subsystem::Kernel, "isr");
        assert!(!obs.tracing(Subsystem::Cluster));
        // Span path: a disabled observer hands out the null id and
        // span_link is a no-op — still zero allocation.
        let s = obs.new_span();
        assert!(s.is_none());
        obs.span_link(i as u128, 7, 0, Subsystem::Cluster, "hop", s, SpanId::NONE);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled path must not allocate");
    assert!(obs.events().is_empty(), "disabled path must record nothing");
}

/// A tracer with a zero subsystem mask drops everything before touching
/// the ring: nothing is recorded and nothing is allocated per event.
#[test]
fn masked_out_tracer_records_nothing_and_allocates_nothing() {
    let obs = SimObserver::with_trace(1024, 0);
    assert!(obs.is_enabled());

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        obs.instant(i as u128, 0, Subsystem::Net, "frame");
        // Span ids are a relaxed fetch-add; the masked-off link record is
        // dropped before touching the ring. Neither allocates.
        let s = obs.new_span();
        assert!(s.is_some());
        obs.span_link(i as u128, 7, 0, Subsystem::Net, "hop", s, SpanId::NONE);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "masked-out trace path must not allocate");
    assert!(obs.events().is_empty());
}
