/root/repo/target/debug/examples/gps_validation-c76d46ac058513cf.d: examples/gps_validation.rs

/root/repo/target/debug/examples/libgps_validation-c76d46ac058513cf.rmeta: examples/gps_validation.rs

examples/gps_validation.rs:
