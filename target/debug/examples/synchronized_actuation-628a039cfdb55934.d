/root/repo/target/debug/examples/synchronized_actuation-628a039cfdb55934.d: examples/synchronized_actuation.rs

/root/repo/target/debug/examples/synchronized_actuation-628a039cfdb55934: examples/synchronized_actuation.rs

examples/synchronized_actuation.rs:
