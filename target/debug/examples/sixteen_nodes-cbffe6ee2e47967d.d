/root/repo/target/debug/examples/sixteen_nodes-cbffe6ee2e47967d.d: examples/sixteen_nodes.rs

/root/repo/target/debug/examples/libsixteen_nodes-cbffe6ee2e47967d.rmeta: examples/sixteen_nodes.rs

examples/sixteen_nodes.rs:
