/root/repo/target/debug/examples/quickstart-4c137d4d0aec4fc0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4c137d4d0aec4fc0: examples/quickstart.rs

examples/quickstart.rs:
