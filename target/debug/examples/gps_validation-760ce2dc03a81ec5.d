/root/repo/target/debug/examples/gps_validation-760ce2dc03a81ec5.d: examples/gps_validation.rs

/root/repo/target/debug/examples/gps_validation-760ce2dc03a81ec5: examples/gps_validation.rs

examples/gps_validation.rs:
