/root/repo/target/debug/examples/quickstart-6d3ddf1f5128002d.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-6d3ddf1f5128002d.rmeta: examples/quickstart.rs

examples/quickstart.rs:
