/root/repo/target/debug/examples/sixteen_nodes-19011f1b903a68ad.d: examples/sixteen_nodes.rs

/root/repo/target/debug/examples/sixteen_nodes-19011f1b903a68ad: examples/sixteen_nodes.rs

examples/sixteen_nodes.rs:
