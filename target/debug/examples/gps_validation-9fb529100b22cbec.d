/root/repo/target/debug/examples/gps_validation-9fb529100b22cbec.d: examples/gps_validation.rs

/root/repo/target/debug/examples/gps_validation-9fb529100b22cbec: examples/gps_validation.rs

examples/gps_validation.rs:
