/root/repo/target/debug/examples/quickstart-eece8bbc60dc890c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-eece8bbc60dc890c: examples/quickstart.rs

examples/quickstart.rs:
