/root/repo/target/debug/examples/synchronized_actuation-c7c834dc36213c50.d: examples/synchronized_actuation.rs

/root/repo/target/debug/examples/libsynchronized_actuation-c7c834dc36213c50.rmeta: examples/synchronized_actuation.rs

examples/synchronized_actuation.rs:
