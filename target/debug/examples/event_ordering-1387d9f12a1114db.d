/root/repo/target/debug/examples/event_ordering-1387d9f12a1114db.d: examples/event_ordering.rs Cargo.toml

/root/repo/target/debug/examples/libevent_ordering-1387d9f12a1114db.rmeta: examples/event_ordering.rs Cargo.toml

examples/event_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
