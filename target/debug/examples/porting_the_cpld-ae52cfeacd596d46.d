/root/repo/target/debug/examples/porting_the_cpld-ae52cfeacd596d46.d: examples/porting_the_cpld.rs Cargo.toml

/root/repo/target/debug/examples/libporting_the_cpld-ae52cfeacd596d46.rmeta: examples/porting_the_cpld.rs Cargo.toml

examples/porting_the_cpld.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
