/root/repo/target/debug/examples/timestamping_modes-438c4ab7b11c227b.d: examples/timestamping_modes.rs

/root/repo/target/debug/examples/timestamping_modes-438c4ab7b11c227b: examples/timestamping_modes.rs

examples/timestamping_modes.rs:
