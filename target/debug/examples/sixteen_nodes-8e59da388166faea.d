/root/repo/target/debug/examples/sixteen_nodes-8e59da388166faea.d: examples/sixteen_nodes.rs

/root/repo/target/debug/examples/sixteen_nodes-8e59da388166faea: examples/sixteen_nodes.rs

examples/sixteen_nodes.rs:
