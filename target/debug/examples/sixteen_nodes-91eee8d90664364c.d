/root/repo/target/debug/examples/sixteen_nodes-91eee8d90664364c.d: examples/sixteen_nodes.rs Cargo.toml

/root/repo/target/debug/examples/libsixteen_nodes-91eee8d90664364c.rmeta: examples/sixteen_nodes.rs Cargo.toml

examples/sixteen_nodes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
