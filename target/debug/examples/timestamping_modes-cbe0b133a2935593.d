/root/repo/target/debug/examples/timestamping_modes-cbe0b133a2935593.d: examples/timestamping_modes.rs

/root/repo/target/debug/examples/libtimestamping_modes-cbe0b133a2935593.rmeta: examples/timestamping_modes.rs

examples/timestamping_modes.rs:
