/root/repo/target/debug/examples/event_ordering-fd012479c052f962.d: examples/event_ordering.rs

/root/repo/target/debug/examples/event_ordering-fd012479c052f962: examples/event_ordering.rs

examples/event_ordering.rs:
