/root/repo/target/debug/examples/porting_the_cpld-1fbf191c7ab7fb23.d: examples/porting_the_cpld.rs

/root/repo/target/debug/examples/libporting_the_cpld-1fbf191c7ab7fb23.rmeta: examples/porting_the_cpld.rs

examples/porting_the_cpld.rs:
