/root/repo/target/debug/examples/synchronized_actuation-436c7bbe2ad3f497.d: examples/synchronized_actuation.rs

/root/repo/target/debug/examples/synchronized_actuation-436c7bbe2ad3f497: examples/synchronized_actuation.rs

examples/synchronized_actuation.rs:
