/root/repo/target/debug/examples/event_ordering-26444d434458a128.d: examples/event_ordering.rs

/root/repo/target/debug/examples/libevent_ordering-26444d434458a128.rmeta: examples/event_ordering.rs

examples/event_ordering.rs:
