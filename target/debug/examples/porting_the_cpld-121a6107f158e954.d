/root/repo/target/debug/examples/porting_the_cpld-121a6107f158e954.d: examples/porting_the_cpld.rs

/root/repo/target/debug/examples/porting_the_cpld-121a6107f158e954: examples/porting_the_cpld.rs

examples/porting_the_cpld.rs:
