/root/repo/target/debug/examples/event_ordering-eb16d9309180b918.d: examples/event_ordering.rs

/root/repo/target/debug/examples/event_ordering-eb16d9309180b918: examples/event_ordering.rs

examples/event_ordering.rs:
