/root/repo/target/debug/examples/porting_the_cpld-c6632c7970580895.d: examples/porting_the_cpld.rs

/root/repo/target/debug/examples/porting_the_cpld-c6632c7970580895: examples/porting_the_cpld.rs

examples/porting_the_cpld.rs:
