/root/repo/target/debug/examples/timestamping_modes-889822bb3aa644e0.d: examples/timestamping_modes.rs Cargo.toml

/root/repo/target/debug/examples/libtimestamping_modes-889822bb3aa644e0.rmeta: examples/timestamping_modes.rs Cargo.toml

examples/timestamping_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
