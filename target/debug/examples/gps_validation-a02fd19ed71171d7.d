/root/repo/target/debug/examples/gps_validation-a02fd19ed71171d7.d: examples/gps_validation.rs Cargo.toml

/root/repo/target/debug/examples/libgps_validation-a02fd19ed71171d7.rmeta: examples/gps_validation.rs Cargo.toml

examples/gps_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
