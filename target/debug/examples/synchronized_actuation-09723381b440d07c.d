/root/repo/target/debug/examples/synchronized_actuation-09723381b440d07c.d: examples/synchronized_actuation.rs Cargo.toml

/root/repo/target/debug/examples/libsynchronized_actuation-09723381b440d07c.rmeta: examples/synchronized_actuation.rs Cargo.toml

examples/synchronized_actuation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
