/root/repo/target/debug/examples/timestamping_modes-5ac712568c42a802.d: examples/timestamping_modes.rs

/root/repo/target/debug/examples/timestamping_modes-5ac712568c42a802: examples/timestamping_modes.rs

examples/timestamping_modes.rs:
