/root/repo/target/debug/deps/nti-ed869d29e6e5a979.d: src/lib.rs

/root/repo/target/debug/deps/nti-ed869d29e6e5a979: src/lib.rs

src/lib.rs:
