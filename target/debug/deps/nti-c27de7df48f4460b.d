/root/repo/target/debug/deps/nti-c27de7df48f4460b.d: src/lib.rs

/root/repo/target/debug/deps/libnti-c27de7df48f4460b.rmeta: src/lib.rs

src/lib.rs:
