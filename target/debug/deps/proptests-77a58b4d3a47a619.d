/root/repo/target/debug/deps/proptests-77a58b4d3a47a619.d: crates/netsim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-77a58b4d3a47a619.rmeta: crates/netsim/tests/proptests.rs Cargo.toml

crates/netsim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
