/root/repo/target/debug/deps/nti_core-f576ca9081a9e49d.d: crates/core/src/lib.rs crates/core/src/algo.rs crates/core/src/aposteriori.rs crates/core/src/cluster.rs crates/core/src/convergence.rs crates/core/src/interval.rs crates/core/src/node.rs crates/core/src/ntp_sync.rs crates/core/src/params.rs crates/core/src/payload.rs crates/core/src/rate.rs crates/core/src/rtt.rs crates/core/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libnti_core-f576ca9081a9e49d.rmeta: crates/core/src/lib.rs crates/core/src/algo.rs crates/core/src/aposteriori.rs crates/core/src/cluster.rs crates/core/src/convergence.rs crates/core/src/interval.rs crates/core/src/node.rs crates/core/src/ntp_sync.rs crates/core/src/params.rs crates/core/src/payload.rs crates/core/src/rate.rs crates/core/src/rtt.rs crates/core/src/validate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/algo.rs:
crates/core/src/aposteriori.rs:
crates/core/src/cluster.rs:
crates/core/src/convergence.rs:
crates/core/src/interval.rs:
crates/core/src/node.rs:
crates/core/src/ntp_sync.rs:
crates/core/src/params.rs:
crates/core/src/payload.rs:
crates/core/src/rate.rs:
crates/core/src/rtt.rs:
crates/core/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
