/root/repo/target/debug/deps/e3_fosc_crossover-7cbe9743b79ba6d2.d: crates/bench/src/bin/e3_fosc_crossover.rs Cargo.toml

/root/repo/target/debug/deps/libe3_fosc_crossover-7cbe9743b79ba6d2.rmeta: crates/bench/src/bin/e3_fosc_crossover.rs Cargo.toml

crates/bench/src/bin/e3_fosc_crossover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
