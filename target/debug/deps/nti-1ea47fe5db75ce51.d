/root/repo/target/debug/deps/nti-1ea47fe5db75ce51.d: src/lib.rs

/root/repo/target/debug/deps/libnti-1ea47fe5db75ce51.rlib: src/lib.rs

/root/repo/target/debug/deps/libnti-1ea47fe5db75ce51.rmeta: src/lib.rs

src/lib.rs:
