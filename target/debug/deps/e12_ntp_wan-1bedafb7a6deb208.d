/root/repo/target/debug/deps/e12_ntp_wan-1bedafb7a6deb208.d: crates/bench/src/bin/e12_ntp_wan.rs

/root/repo/target/debug/deps/e12_ntp_wan-1bedafb7a6deb208: crates/bench/src/bin/e12_ntp_wan.rs

crates/bench/src/bin/e12_ntp_wan.rs:
