/root/repo/target/debug/deps/e15_convergence_functions-afd515b2b6e78ba7.d: crates/bench/src/bin/e15_convergence_functions.rs

/root/repo/target/debug/deps/e15_convergence_functions-afd515b2b6e78ba7: crates/bench/src/bin/e15_convergence_functions.rs

crates/bench/src/bin/e15_convergence_functions.rs:
