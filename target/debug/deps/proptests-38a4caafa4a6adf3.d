/root/repo/target/debug/deps/proptests-38a4caafa4a6adf3.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-38a4caafa4a6adf3: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
