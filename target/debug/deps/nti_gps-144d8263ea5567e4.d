/root/repo/target/debug/deps/nti_gps-144d8263ea5567e4.d: crates/gps/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnti_gps-144d8263ea5567e4.rmeta: crates/gps/src/lib.rs Cargo.toml

crates/gps/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
