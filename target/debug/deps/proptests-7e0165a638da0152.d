/root/repo/target/debug/deps/proptests-7e0165a638da0152.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-7e0165a638da0152.rmeta: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
