/root/repo/target/debug/deps/e11_rtt_measurement-9d34a37834d78054.d: crates/bench/src/bin/e11_rtt_measurement.rs Cargo.toml

/root/repo/target/debug/deps/libe11_rtt_measurement-9d34a37834d78054.rmeta: crates/bench/src/bin/e11_rtt_measurement.rs Cargo.toml

crates/bench/src/bin/e11_rtt_measurement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
