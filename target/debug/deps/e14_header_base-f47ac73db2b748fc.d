/root/repo/target/debug/deps/e14_header_base-f47ac73db2b748fc.d: crates/bench/src/bin/e14_header_base.rs

/root/repo/target/debug/deps/e14_header_base-f47ac73db2b748fc: crates/bench/src/bin/e14_header_base.rs

crates/bench/src/bin/e14_header_base.rs:
