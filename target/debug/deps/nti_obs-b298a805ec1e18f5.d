/root/repo/target/debug/deps/nti_obs-b298a805ec1e18f5.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/observer.rs crates/obs/src/quantile.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnti_obs-b298a805ec1e18f5.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/observer.rs crates/obs/src/quantile.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/observer.rs:
crates/obs/src/quantile.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
