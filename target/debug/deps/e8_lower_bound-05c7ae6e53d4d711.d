/root/repo/target/debug/deps/e8_lower_bound-05c7ae6e53d4d711.d: crates/bench/src/bin/e8_lower_bound.rs

/root/repo/target/debug/deps/libe8_lower_bound-05c7ae6e53d4d711.rmeta: crates/bench/src/bin/e8_lower_bound.rs

crates/bench/src/bin/e8_lower_bound.rs:
