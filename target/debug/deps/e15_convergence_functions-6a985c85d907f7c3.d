/root/repo/target/debug/deps/e15_convergence_functions-6a985c85d907f7c3.d: crates/bench/src/bin/e15_convergence_functions.rs Cargo.toml

/root/repo/target/debug/deps/libe15_convergence_functions-6a985c85d907f7c3.rmeta: crates/bench/src/bin/e15_convergence_functions.rs Cargo.toml

crates/bench/src/bin/e15_convergence_functions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
