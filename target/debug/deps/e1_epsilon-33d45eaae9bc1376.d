/root/repo/target/debug/deps/e1_epsilon-33d45eaae9bc1376.d: crates/bench/src/bin/e1_epsilon.rs

/root/repo/target/debug/deps/libe1_epsilon-33d45eaae9bc1376.rmeta: crates/bench/src/bin/e1_epsilon.rs

crates/bench/src/bin/e1_epsilon.rs:
