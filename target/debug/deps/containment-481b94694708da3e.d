/root/repo/target/debug/deps/containment-481b94694708da3e.d: tests/containment.rs

/root/repo/target/debug/deps/containment-481b94694708da3e: tests/containment.rs

tests/containment.rs:
