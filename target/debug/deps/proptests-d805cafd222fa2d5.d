/root/repo/target/debug/deps/proptests-d805cafd222fa2d5.d: crates/kernel/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d805cafd222fa2d5.rmeta: crates/kernel/tests/proptests.rs Cargo.toml

crates/kernel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
