/root/repo/target/debug/deps/e4_rate_sync-edb7ce8866c11c4f.d: crates/bench/src/bin/e4_rate_sync.rs

/root/repo/target/debug/deps/e4_rate_sync-edb7ce8866c11c4f: crates/bench/src/bin/e4_rate_sync.rs

crates/bench/src/bin/e4_rate_sync.rs:
