/root/repo/target/debug/deps/e6_class_table-fe22f2d027dca194.d: crates/bench/src/bin/e6_class_table.rs

/root/repo/target/debug/deps/e6_class_table-fe22f2d027dca194: crates/bench/src/bin/e6_class_table.rs

crates/bench/src/bin/e6_class_table.rs:
