/root/repo/target/debug/deps/compensation_theorem-65c2fad1815902cd.d: crates/core/tests/compensation_theorem.rs

/root/repo/target/debug/deps/compensation_theorem-65c2fad1815902cd: crates/core/tests/compensation_theorem.rs

crates/core/tests/compensation_theorem.rs:
