/root/repo/target/debug/deps/e2_granularity-a0a6a61a15f1f01b.d: crates/bench/src/bin/e2_granularity.rs

/root/repo/target/debug/deps/libe2_granularity-a0a6a61a15f1f01b.rmeta: crates/bench/src/bin/e2_granularity.rs

crates/bench/src/bin/e2_granularity.rs:
