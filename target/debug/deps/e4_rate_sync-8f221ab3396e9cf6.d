/root/repo/target/debug/deps/e4_rate_sync-8f221ab3396e9cf6.d: crates/bench/src/bin/e4_rate_sync.rs

/root/repo/target/debug/deps/e4_rate_sync-8f221ab3396e9cf6: crates/bench/src/bin/e4_rate_sync.rs

crates/bench/src/bin/e4_rate_sync.rs:
