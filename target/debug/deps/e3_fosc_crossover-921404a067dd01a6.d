/root/repo/target/debug/deps/e3_fosc_crossover-921404a067dd01a6.d: crates/bench/src/bin/e3_fosc_crossover.rs

/root/repo/target/debug/deps/libe3_fosc_crossover-921404a067dd01a6.rmeta: crates/bench/src/bin/e3_fosc_crossover.rs

crates/bench/src/bin/e3_fosc_crossover.rs:
