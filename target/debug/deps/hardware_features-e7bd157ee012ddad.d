/root/repo/target/debug/deps/hardware_features-e7bd157ee012ddad.d: tests/hardware_features.rs

/root/repo/target/debug/deps/hardware_features-e7bd157ee012ddad: tests/hardware_features.rs

tests/hardware_features.rs:
