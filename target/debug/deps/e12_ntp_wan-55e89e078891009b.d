/root/repo/target/debug/deps/e12_ntp_wan-55e89e078891009b.d: crates/bench/src/bin/e12_ntp_wan.rs

/root/repo/target/debug/deps/e12_ntp_wan-55e89e078891009b: crates/bench/src/bin/e12_ntp_wan.rs

crates/bench/src/bin/e12_ntp_wan.rs:
