/root/repo/target/debug/deps/e14_header_base-fcef1d6bf85a194d.d: crates/bench/src/bin/e14_header_base.rs Cargo.toml

/root/repo/target/debug/deps/libe14_header_base-fcef1d6bf85a194d.rmeta: crates/bench/src/bin/e14_header_base.rs Cargo.toml

crates/bench/src/bin/e14_header_base.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
