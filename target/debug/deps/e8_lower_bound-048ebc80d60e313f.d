/root/repo/target/debug/deps/e8_lower_bound-048ebc80d60e313f.d: crates/bench/src/bin/e8_lower_bound.rs

/root/repo/target/debug/deps/e8_lower_bound-048ebc80d60e313f: crates/bench/src/bin/e8_lower_bound.rs

crates/bench/src/bin/e8_lower_bound.rs:
