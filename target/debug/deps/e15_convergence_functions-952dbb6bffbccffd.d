/root/repo/target/debug/deps/e15_convergence_functions-952dbb6bffbccffd.d: crates/bench/src/bin/e15_convergence_functions.rs

/root/repo/target/debug/deps/e15_convergence_functions-952dbb6bffbccffd: crates/bench/src/bin/e15_convergence_functions.rs

crates/bench/src/bin/e15_convergence_functions.rs:
