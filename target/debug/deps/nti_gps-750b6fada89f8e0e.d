/root/repo/target/debug/deps/nti_gps-750b6fada89f8e0e.d: crates/gps/src/lib.rs

/root/repo/target/debug/deps/libnti_gps-750b6fada89f8e0e.rmeta: crates/gps/src/lib.rs

crates/gps/src/lib.rs:
