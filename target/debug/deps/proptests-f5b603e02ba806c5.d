/root/repo/target/debug/deps/proptests-f5b603e02ba806c5.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-f5b603e02ba806c5.rmeta: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
