/root/repo/target/debug/deps/e5_gps_validation-c3411560f4578ed7.d: crates/bench/src/bin/e5_gps_validation.rs

/root/repo/target/debug/deps/e5_gps_validation-c3411560f4578ed7: crates/bench/src/bin/e5_gps_validation.rs

crates/bench/src/bin/e5_gps_validation.rs:
