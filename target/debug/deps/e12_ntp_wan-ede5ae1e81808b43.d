/root/repo/target/debug/deps/e12_ntp_wan-ede5ae1e81808b43.d: crates/bench/src/bin/e12_ntp_wan.rs

/root/repo/target/debug/deps/e12_ntp_wan-ede5ae1e81808b43: crates/bench/src/bin/e12_ntp_wan.rs

crates/bench/src/bin/e12_ntp_wan.rs:
