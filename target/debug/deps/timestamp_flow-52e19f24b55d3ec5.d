/root/repo/target/debug/deps/timestamp_flow-52e19f24b55d3ec5.d: tests/timestamp_flow.rs

/root/repo/target/debug/deps/timestamp_flow-52e19f24b55d3ec5: tests/timestamp_flow.rs

tests/timestamp_flow.rs:
