/root/repo/target/debug/deps/e13_aposteriori-35e8eff6271426a2.d: crates/bench/src/bin/e13_aposteriori.rs

/root/repo/target/debug/deps/e13_aposteriori-35e8eff6271426a2: crates/bench/src/bin/e13_aposteriori.rs

crates/bench/src/bin/e13_aposteriori.rs:
