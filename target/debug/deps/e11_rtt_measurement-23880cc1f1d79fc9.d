/root/repo/target/debug/deps/e11_rtt_measurement-23880cc1f1d79fc9.d: crates/bench/src/bin/e11_rtt_measurement.rs

/root/repo/target/debug/deps/libe11_rtt_measurement-23880cc1f1d79fc9.rmeta: crates/bench/src/bin/e11_rtt_measurement.rs

crates/bench/src/bin/e11_rtt_measurement.rs:
