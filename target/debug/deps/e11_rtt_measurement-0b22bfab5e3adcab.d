/root/repo/target/debug/deps/e11_rtt_measurement-0b22bfab5e3adcab.d: crates/bench/src/bin/e11_rtt_measurement.rs

/root/repo/target/debug/deps/e11_rtt_measurement-0b22bfab5e3adcab: crates/bench/src/bin/e11_rtt_measurement.rs

crates/bench/src/bin/e11_rtt_measurement.rs:
