/root/repo/target/debug/deps/e11_rtt_measurement-25dc9218aaa172de.d: crates/bench/src/bin/e11_rtt_measurement.rs

/root/repo/target/debug/deps/e11_rtt_measurement-25dc9218aaa172de: crates/bench/src/bin/e11_rtt_measurement.rs

crates/bench/src/bin/e11_rtt_measurement.rs:
