/root/repo/target/debug/deps/e12_ntp_wan-b34c65049ea886cd.d: crates/bench/src/bin/e12_ntp_wan.rs

/root/repo/target/debug/deps/libe12_ntp_wan-b34c65049ea886cd.rmeta: crates/bench/src/bin/e12_ntp_wan.rs

crates/bench/src/bin/e12_ntp_wan.rs:
