/root/repo/target/debug/deps/e14_header_base-50e2faa662ee0c2e.d: crates/bench/src/bin/e14_header_base.rs

/root/repo/target/debug/deps/libe14_header_base-50e2faa662ee0c2e.rmeta: crates/bench/src/bin/e14_header_base.rs

crates/bench/src/bin/e14_header_base.rs:
