/root/repo/target/debug/deps/e6_class_table-50d3843402adbf13.d: crates/bench/src/bin/e6_class_table.rs

/root/repo/target/debug/deps/e6_class_table-50d3843402adbf13: crates/bench/src/bin/e6_class_table.rs

crates/bench/src/bin/e6_class_table.rs:
