/root/repo/target/debug/deps/e4_rate_sync-8005f55203524c37.d: crates/bench/src/bin/e4_rate_sync.rs Cargo.toml

/root/repo/target/debug/deps/libe4_rate_sync-8005f55203524c37.rmeta: crates/bench/src/bin/e4_rate_sync.rs Cargo.toml

crates/bench/src/bin/e4_rate_sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
