/root/repo/target/debug/deps/proptests-5026861ef9722ef2.d: crates/utcsu/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-5026861ef9722ef2.rmeta: crates/utcsu/tests/proptests.rs

crates/utcsu/tests/proptests.rs:
