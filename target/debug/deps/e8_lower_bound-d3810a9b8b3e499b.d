/root/repo/target/debug/deps/e8_lower_bound-d3810a9b8b3e499b.d: crates/bench/src/bin/e8_lower_bound.rs

/root/repo/target/debug/deps/e8_lower_bound-d3810a9b8b3e499b: crates/bench/src/bin/e8_lower_bound.rs

crates/bench/src/bin/e8_lower_bound.rs:
