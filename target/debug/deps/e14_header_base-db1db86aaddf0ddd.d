/root/repo/target/debug/deps/e14_header_base-db1db86aaddf0ddd.d: crates/bench/src/bin/e14_header_base.rs

/root/repo/target/debug/deps/e14_header_base-db1db86aaddf0ddd: crates/bench/src/bin/e14_header_base.rs

crates/bench/src/bin/e14_header_base.rs:
