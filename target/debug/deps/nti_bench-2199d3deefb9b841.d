/root/repo/target/debug/deps/nti_bench-2199d3deefb9b841.d: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/debug/deps/libnti_bench-2199d3deefb9b841.rmeta: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

crates/bench/src/lib.rs:
crates/bench/src/obs_cli.rs:
