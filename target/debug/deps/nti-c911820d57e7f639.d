/root/repo/target/debug/deps/nti-c911820d57e7f639.d: src/lib.rs

/root/repo/target/debug/deps/nti-c911820d57e7f639: src/lib.rs

src/lib.rs:
