/root/repo/target/debug/deps/timestamp_flow-7058b9623df88e7f.d: tests/timestamp_flow.rs

/root/repo/target/debug/deps/libtimestamp_flow-7058b9623df88e7f.rmeta: tests/timestamp_flow.rs

tests/timestamp_flow.rs:
