/root/repo/target/debug/deps/e9_sixteen_nodes-728cd9fd84404fb3.d: crates/bench/src/bin/e9_sixteen_nodes.rs

/root/repo/target/debug/deps/libe9_sixteen_nodes-728cd9fd84404fb3.rmeta: crates/bench/src/bin/e9_sixteen_nodes.rs

crates/bench/src/bin/e9_sixteen_nodes.rs:
