/root/repo/target/debug/deps/e3_fosc_crossover-e339e69537e77ce8.d: crates/bench/src/bin/e3_fosc_crossover.rs

/root/repo/target/debug/deps/e3_fosc_crossover-e339e69537e77ce8: crates/bench/src/bin/e3_fosc_crossover.rs

crates/bench/src/bin/e3_fosc_crossover.rs:
