/root/repo/target/debug/deps/e15_convergence_functions-e153222d728361c3.d: crates/bench/src/bin/e15_convergence_functions.rs

/root/repo/target/debug/deps/e15_convergence_functions-e153222d728361c3: crates/bench/src/bin/e15_convergence_functions.rs

crates/bench/src/bin/e15_convergence_functions.rs:
