/root/repo/target/debug/deps/proptests-4a44efe52de24381.d: crates/gps/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4a44efe52de24381: crates/gps/tests/proptests.rs

crates/gps/tests/proptests.rs:
