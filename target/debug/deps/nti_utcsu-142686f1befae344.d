/root/repo/target/debug/deps/nti_utcsu-142686f1befae344.d: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs

/root/repo/target/debug/deps/libnti_utcsu-142686f1befae344.rmeta: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs

crates/utcsu/src/lib.rs:
crates/utcsu/src/acu.rs:
crates/utcsu/src/btu.rs:
crates/utcsu/src/itu.rs:
crates/utcsu/src/ltu.rs:
crates/utcsu/src/regs.rs:
crates/utcsu/src/snu.rs:
crates/utcsu/src/stamp.rs:
crates/utcsu/src/timer.rs:
