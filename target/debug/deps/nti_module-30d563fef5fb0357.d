/root/repo/target/debug/deps/nti_module-30d563fef5fb0357.d: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs Cargo.toml

/root/repo/target/debug/deps/libnti_module-30d563fef5fb0357.rmeta: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs Cargo.toml

crates/nti/src/lib.rs:
crates/nti/src/carrier.rs:
crates/nti/src/driver.rs:
crates/nti/src/sprom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
