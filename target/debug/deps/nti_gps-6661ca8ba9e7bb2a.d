/root/repo/target/debug/deps/nti_gps-6661ca8ba9e7bb2a.d: crates/gps/src/lib.rs

/root/repo/target/debug/deps/nti_gps-6661ca8ba9e7bb2a: crates/gps/src/lib.rs

crates/gps/src/lib.rs:
