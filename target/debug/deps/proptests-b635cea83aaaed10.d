/root/repo/target/debug/deps/proptests-b635cea83aaaed10.d: crates/kernel/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-b635cea83aaaed10.rmeta: crates/kernel/tests/proptests.rs

crates/kernel/tests/proptests.rs:
