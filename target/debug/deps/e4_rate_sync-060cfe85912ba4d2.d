/root/repo/target/debug/deps/e4_rate_sync-060cfe85912ba4d2.d: crates/bench/src/bin/e4_rate_sync.rs

/root/repo/target/debug/deps/e4_rate_sync-060cfe85912ba4d2: crates/bench/src/bin/e4_rate_sync.rs

crates/bench/src/bin/e4_rate_sync.rs:
