/root/repo/target/debug/deps/e8_lower_bound-d9e3e0af4c081348.d: crates/bench/src/bin/e8_lower_bound.rs

/root/repo/target/debug/deps/e8_lower_bound-d9e3e0af4c081348: crates/bench/src/bin/e8_lower_bound.rs

crates/bench/src/bin/e8_lower_bound.rs:
