/root/repo/target/debug/deps/e9_sixteen_nodes-cd8504add9bec61e.d: crates/bench/src/bin/e9_sixteen_nodes.rs

/root/repo/target/debug/deps/e9_sixteen_nodes-cd8504add9bec61e: crates/bench/src/bin/e9_sixteen_nodes.rs

crates/bench/src/bin/e9_sixteen_nodes.rs:
