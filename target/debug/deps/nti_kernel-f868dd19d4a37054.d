/root/repo/target/debug/deps/nti_kernel-f868dd19d4a37054.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

/root/repo/target/debug/deps/libnti_kernel-f868dd19d4a37054.rlib: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

/root/repo/target/debug/deps/libnti_kernel-f868dd19d4a37054.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
