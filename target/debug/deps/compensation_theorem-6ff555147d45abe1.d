/root/repo/target/debug/deps/compensation_theorem-6ff555147d45abe1.d: crates/core/tests/compensation_theorem.rs

/root/repo/target/debug/deps/compensation_theorem-6ff555147d45abe1: crates/core/tests/compensation_theorem.rs

crates/core/tests/compensation_theorem.rs:
