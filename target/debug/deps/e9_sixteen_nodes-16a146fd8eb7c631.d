/root/repo/target/debug/deps/e9_sixteen_nodes-16a146fd8eb7c631.d: crates/bench/src/bin/e9_sixteen_nodes.rs

/root/repo/target/debug/deps/e9_sixteen_nodes-16a146fd8eb7c631: crates/bench/src/bin/e9_sixteen_nodes.rs

crates/bench/src/bin/e9_sixteen_nodes.rs:
