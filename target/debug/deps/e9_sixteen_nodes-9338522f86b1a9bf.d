/root/repo/target/debug/deps/e9_sixteen_nodes-9338522f86b1a9bf.d: crates/bench/src/bin/e9_sixteen_nodes.rs

/root/repo/target/debug/deps/e9_sixteen_nodes-9338522f86b1a9bf: crates/bench/src/bin/e9_sixteen_nodes.rs

crates/bench/src/bin/e9_sixteen_nodes.rs:
