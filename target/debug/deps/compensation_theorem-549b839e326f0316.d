/root/repo/target/debug/deps/compensation_theorem-549b839e326f0316.d: crates/core/tests/compensation_theorem.rs Cargo.toml

/root/repo/target/debug/deps/libcompensation_theorem-549b839e326f0316.rmeta: crates/core/tests/compensation_theorem.rs Cargo.toml

crates/core/tests/compensation_theorem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
