/root/repo/target/debug/deps/proptests-75d35dc33ca1782b.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-75d35dc33ca1782b: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
