/root/repo/target/debug/deps/hardware_features-e5b726dcb4d6b215.d: tests/hardware_features.rs Cargo.toml

/root/repo/target/debug/deps/libhardware_features-e5b726dcb4d6b215.rmeta: tests/hardware_features.rs Cargo.toml

tests/hardware_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
