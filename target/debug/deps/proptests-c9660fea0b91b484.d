/root/repo/target/debug/deps/proptests-c9660fea0b91b484.d: crates/simcore/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-c9660fea0b91b484.rmeta: crates/simcore/tests/proptests.rs

crates/simcore/tests/proptests.rs:
