/root/repo/target/debug/deps/e8_lower_bound-174c312502b44e76.d: crates/bench/src/bin/e8_lower_bound.rs

/root/repo/target/debug/deps/libe8_lower_bound-174c312502b44e76.rmeta: crates/bench/src/bin/e8_lower_bound.rs

crates/bench/src/bin/e8_lower_bound.rs:
