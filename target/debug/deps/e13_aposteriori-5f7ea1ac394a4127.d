/root/repo/target/debug/deps/e13_aposteriori-5f7ea1ac394a4127.d: crates/bench/src/bin/e13_aposteriori.rs

/root/repo/target/debug/deps/e13_aposteriori-5f7ea1ac394a4127: crates/bench/src/bin/e13_aposteriori.rs

crates/bench/src/bin/e13_aposteriori.rs:
