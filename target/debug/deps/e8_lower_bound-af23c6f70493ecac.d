/root/repo/target/debug/deps/e8_lower_bound-af23c6f70493ecac.d: crates/bench/src/bin/e8_lower_bound.rs Cargo.toml

/root/repo/target/debug/deps/libe8_lower_bound-af23c6f70493ecac.rmeta: crates/bench/src/bin/e8_lower_bound.rs Cargo.toml

crates/bench/src/bin/e8_lower_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
