/root/repo/target/debug/deps/e10_wan_of_lans-757165085b8a1105.d: crates/bench/src/bin/e10_wan_of_lans.rs

/root/repo/target/debug/deps/e10_wan_of_lans-757165085b8a1105: crates/bench/src/bin/e10_wan_of_lans.rs

crates/bench/src/bin/e10_wan_of_lans.rs:
