/root/repo/target/debug/deps/e5_gps_validation-9e844b0751b2903e.d: crates/bench/src/bin/e5_gps_validation.rs

/root/repo/target/debug/deps/libe5_gps_validation-9e844b0751b2903e.rmeta: crates/bench/src/bin/e5_gps_validation.rs

crates/bench/src/bin/e5_gps_validation.rs:
