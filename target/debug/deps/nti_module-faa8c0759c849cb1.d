/root/repo/target/debug/deps/nti_module-faa8c0759c849cb1.d: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

/root/repo/target/debug/deps/nti_module-faa8c0759c849cb1: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

crates/nti/src/lib.rs:
crates/nti/src/carrier.rs:
crates/nti/src/driver.rs:
crates/nti/src/sprom.rs:
