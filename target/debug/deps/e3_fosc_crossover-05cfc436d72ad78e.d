/root/repo/target/debug/deps/e3_fosc_crossover-05cfc436d72ad78e.d: crates/bench/src/bin/e3_fosc_crossover.rs

/root/repo/target/debug/deps/libe3_fosc_crossover-05cfc436d72ad78e.rmeta: crates/bench/src/bin/e3_fosc_crossover.rs

crates/bench/src/bin/e3_fosc_crossover.rs:
