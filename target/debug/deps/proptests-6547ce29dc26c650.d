/root/repo/target/debug/deps/proptests-6547ce29dc26c650.d: crates/utcsu/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6547ce29dc26c650: crates/utcsu/tests/proptests.rs

crates/utcsu/tests/proptests.rs:
