/root/repo/target/debug/deps/nti_gps-6e2bcfb2eaf294d7.d: crates/gps/src/lib.rs

/root/repo/target/debug/deps/libnti_gps-6e2bcfb2eaf294d7.rlib: crates/gps/src/lib.rs

/root/repo/target/debug/deps/libnti_gps-6e2bcfb2eaf294d7.rmeta: crates/gps/src/lib.rs

crates/gps/src/lib.rs:
