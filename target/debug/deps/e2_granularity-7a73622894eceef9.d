/root/repo/target/debug/deps/e2_granularity-7a73622894eceef9.d: crates/bench/src/bin/e2_granularity.rs Cargo.toml

/root/repo/target/debug/deps/libe2_granularity-7a73622894eceef9.rmeta: crates/bench/src/bin/e2_granularity.rs Cargo.toml

crates/bench/src/bin/e2_granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
