/root/repo/target/debug/deps/nti_module-20b5c71da55743f7.d: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

/root/repo/target/debug/deps/libnti_module-20b5c71da55743f7.rlib: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

/root/repo/target/debug/deps/libnti_module-20b5c71da55743f7.rmeta: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

crates/nti/src/lib.rs:
crates/nti/src/carrier.rs:
crates/nti/src/driver.rs:
crates/nti/src/sprom.rs:
