/root/repo/target/debug/deps/e2_granularity-83f5ed03ea5bc176.d: crates/bench/src/bin/e2_granularity.rs

/root/repo/target/debug/deps/e2_granularity-83f5ed03ea5bc176: crates/bench/src/bin/e2_granularity.rs

crates/bench/src/bin/e2_granularity.rs:
