/root/repo/target/debug/deps/nti_kernel-979c244baf7bcaed.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

/root/repo/target/debug/deps/nti_kernel-979c244baf7bcaed: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
