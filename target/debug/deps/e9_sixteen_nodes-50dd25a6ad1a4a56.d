/root/repo/target/debug/deps/e9_sixteen_nodes-50dd25a6ad1a4a56.d: crates/bench/src/bin/e9_sixteen_nodes.rs

/root/repo/target/debug/deps/e9_sixteen_nodes-50dd25a6ad1a4a56: crates/bench/src/bin/e9_sixteen_nodes.rs

crates/bench/src/bin/e9_sixteen_nodes.rs:
