/root/repo/target/debug/deps/e10_wan_of_lans-b166115fb9c3f740.d: crates/bench/src/bin/e10_wan_of_lans.rs

/root/repo/target/debug/deps/e10_wan_of_lans-b166115fb9c3f740: crates/bench/src/bin/e10_wan_of_lans.rs

crates/bench/src/bin/e10_wan_of_lans.rs:
