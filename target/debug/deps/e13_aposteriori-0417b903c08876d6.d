/root/repo/target/debug/deps/e13_aposteriori-0417b903c08876d6.d: crates/bench/src/bin/e13_aposteriori.rs

/root/repo/target/debug/deps/libe13_aposteriori-0417b903c08876d6.rmeta: crates/bench/src/bin/e13_aposteriori.rs

crates/bench/src/bin/e13_aposteriori.rs:
