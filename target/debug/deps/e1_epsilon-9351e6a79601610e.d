/root/repo/target/debug/deps/e1_epsilon-9351e6a79601610e.d: crates/bench/src/bin/e1_epsilon.rs

/root/repo/target/debug/deps/e1_epsilon-9351e6a79601610e: crates/bench/src/bin/e1_epsilon.rs

crates/bench/src/bin/e1_epsilon.rs:
