/root/repo/target/debug/deps/e11_rtt_measurement-604dd5f413fffd73.d: crates/bench/src/bin/e11_rtt_measurement.rs

/root/repo/target/debug/deps/libe11_rtt_measurement-604dd5f413fffd73.rmeta: crates/bench/src/bin/e11_rtt_measurement.rs

crates/bench/src/bin/e11_rtt_measurement.rs:
