/root/repo/target/debug/deps/e7_adder_clock-c2ccf33a3ce8ec50.d: crates/bench/src/bin/e7_adder_clock.rs Cargo.toml

/root/repo/target/debug/deps/libe7_adder_clock-c2ccf33a3ce8ec50.rmeta: crates/bench/src/bin/e7_adder_clock.rs Cargo.toml

crates/bench/src/bin/e7_adder_clock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
