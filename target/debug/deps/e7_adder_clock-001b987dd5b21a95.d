/root/repo/target/debug/deps/e7_adder_clock-001b987dd5b21a95.d: crates/bench/src/bin/e7_adder_clock.rs

/root/repo/target/debug/deps/e7_adder_clock-001b987dd5b21a95: crates/bench/src/bin/e7_adder_clock.rs

crates/bench/src/bin/e7_adder_clock.rs:
