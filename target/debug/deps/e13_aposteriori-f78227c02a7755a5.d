/root/repo/target/debug/deps/e13_aposteriori-f78227c02a7755a5.d: crates/bench/src/bin/e13_aposteriori.rs

/root/repo/target/debug/deps/libe13_aposteriori-f78227c02a7755a5.rmeta: crates/bench/src/bin/e13_aposteriori.rs

crates/bench/src/bin/e13_aposteriori.rs:
