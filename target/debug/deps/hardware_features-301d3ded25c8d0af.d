/root/repo/target/debug/deps/hardware_features-301d3ded25c8d0af.d: tests/hardware_features.rs

/root/repo/target/debug/deps/hardware_features-301d3ded25c8d0af: tests/hardware_features.rs

tests/hardware_features.rs:
