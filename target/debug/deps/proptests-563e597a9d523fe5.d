/root/repo/target/debug/deps/proptests-563e597a9d523fe5.d: crates/gps/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-563e597a9d523fe5.rmeta: crates/gps/tests/proptests.rs Cargo.toml

crates/gps/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
