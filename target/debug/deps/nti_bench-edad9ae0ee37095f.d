/root/repo/target/debug/deps/nti_bench-edad9ae0ee37095f.d: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/debug/deps/libnti_bench-edad9ae0ee37095f.rlib: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/debug/deps/libnti_bench-edad9ae0ee37095f.rmeta: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

crates/bench/src/lib.rs:
crates/bench/src/obs_cli.rs:
