/root/repo/target/debug/deps/proptests-a25901ebea0ad880.d: crates/kernel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a25901ebea0ad880: crates/kernel/tests/proptests.rs

crates/kernel/tests/proptests.rs:
