/root/repo/target/debug/deps/e14_header_base-70a8dfabe6f88d34.d: crates/bench/src/bin/e14_header_base.rs

/root/repo/target/debug/deps/e14_header_base-70a8dfabe6f88d34: crates/bench/src/bin/e14_header_base.rs

crates/bench/src/bin/e14_header_base.rs:
