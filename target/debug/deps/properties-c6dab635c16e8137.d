/root/repo/target/debug/deps/properties-c6dab635c16e8137.d: crates/obs/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c6dab635c16e8137.rmeta: crates/obs/tests/properties.rs Cargo.toml

crates/obs/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
