/root/repo/target/debug/deps/nti_kernel-f20763f4798e8637.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

/root/repo/target/debug/deps/libnti_kernel-f20763f4798e8637.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
