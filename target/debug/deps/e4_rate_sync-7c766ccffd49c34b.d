/root/repo/target/debug/deps/e4_rate_sync-7c766ccffd49c34b.d: crates/bench/src/bin/e4_rate_sync.rs

/root/repo/target/debug/deps/libe4_rate_sync-7c766ccffd49c34b.rmeta: crates/bench/src/bin/e4_rate_sync.rs

crates/bench/src/bin/e4_rate_sync.rs:
