/root/repo/target/debug/deps/proptest-992abd9d52cf97d0.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-992abd9d52cf97d0.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
