/root/repo/target/debug/deps/fault_tolerance-93ced0aed6f5b02b.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/libfault_tolerance-93ced0aed6f5b02b.rmeta: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
