/root/repo/target/debug/deps/e13_aposteriori-4270d1614ed7305d.d: crates/bench/src/bin/e13_aposteriori.rs

/root/repo/target/debug/deps/e13_aposteriori-4270d1614ed7305d: crates/bench/src/bin/e13_aposteriori.rs

crates/bench/src/bin/e13_aposteriori.rs:
