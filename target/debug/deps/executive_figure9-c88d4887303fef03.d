/root/repo/target/debug/deps/executive_figure9-c88d4887303fef03.d: tests/executive_figure9.rs

/root/repo/target/debug/deps/libexecutive_figure9-c88d4887303fef03.rmeta: tests/executive_figure9.rs

tests/executive_figure9.rs:
