/root/repo/target/debug/deps/containment-33ca9f7fab470456.d: tests/containment.rs

/root/repo/target/debug/deps/libcontainment-33ca9f7fab470456.rmeta: tests/containment.rs

tests/containment.rs:
