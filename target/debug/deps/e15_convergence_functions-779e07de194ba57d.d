/root/repo/target/debug/deps/e15_convergence_functions-779e07de194ba57d.d: crates/bench/src/bin/e15_convergence_functions.rs

/root/repo/target/debug/deps/libe15_convergence_functions-779e07de194ba57d.rmeta: crates/bench/src/bin/e15_convergence_functions.rs

crates/bench/src/bin/e15_convergence_functions.rs:
