/root/repo/target/debug/deps/e5_gps_validation-72c9b3b06928040b.d: crates/bench/src/bin/e5_gps_validation.rs Cargo.toml

/root/repo/target/debug/deps/libe5_gps_validation-72c9b3b06928040b.rmeta: crates/bench/src/bin/e5_gps_validation.rs Cargo.toml

crates/bench/src/bin/e5_gps_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
