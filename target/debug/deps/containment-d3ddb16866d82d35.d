/root/repo/target/debug/deps/containment-d3ddb16866d82d35.d: tests/containment.rs Cargo.toml

/root/repo/target/debug/deps/libcontainment-d3ddb16866d82d35.rmeta: tests/containment.rs Cargo.toml

tests/containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
