/root/repo/target/debug/deps/e13_aposteriori-ae675c3f9643b546.d: crates/bench/src/bin/e13_aposteriori.rs Cargo.toml

/root/repo/target/debug/deps/libe13_aposteriori-ae675c3f9643b546.rmeta: crates/bench/src/bin/e13_aposteriori.rs Cargo.toml

crates/bench/src/bin/e13_aposteriori.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
