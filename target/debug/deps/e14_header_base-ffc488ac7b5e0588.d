/root/repo/target/debug/deps/e14_header_base-ffc488ac7b5e0588.d: crates/bench/src/bin/e14_header_base.rs

/root/repo/target/debug/deps/e14_header_base-ffc488ac7b5e0588: crates/bench/src/bin/e14_header_base.rs

crates/bench/src/bin/e14_header_base.rs:
