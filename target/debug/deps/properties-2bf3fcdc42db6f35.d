/root/repo/target/debug/deps/properties-2bf3fcdc42db6f35.d: crates/obs/tests/properties.rs

/root/repo/target/debug/deps/properties-2bf3fcdc42db6f35: crates/obs/tests/properties.rs

crates/obs/tests/properties.rs:
