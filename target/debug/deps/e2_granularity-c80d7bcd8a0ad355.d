/root/repo/target/debug/deps/e2_granularity-c80d7bcd8a0ad355.d: crates/bench/src/bin/e2_granularity.rs

/root/repo/target/debug/deps/e2_granularity-c80d7bcd8a0ad355: crates/bench/src/bin/e2_granularity.rs

crates/bench/src/bin/e2_granularity.rs:
