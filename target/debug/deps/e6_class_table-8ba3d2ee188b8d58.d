/root/repo/target/debug/deps/e6_class_table-8ba3d2ee188b8d58.d: crates/bench/src/bin/e6_class_table.rs

/root/repo/target/debug/deps/libe6_class_table-8ba3d2ee188b8d58.rmeta: crates/bench/src/bin/e6_class_table.rs

crates/bench/src/bin/e6_class_table.rs:
