/root/repo/target/debug/deps/e4_rate_sync-38a6664d07868d4c.d: crates/bench/src/bin/e4_rate_sync.rs

/root/repo/target/debug/deps/e4_rate_sync-38a6664d07868d4c: crates/bench/src/bin/e4_rate_sync.rs

crates/bench/src/bin/e4_rate_sync.rs:
