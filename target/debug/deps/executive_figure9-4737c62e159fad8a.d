/root/repo/target/debug/deps/executive_figure9-4737c62e159fad8a.d: tests/executive_figure9.rs

/root/repo/target/debug/deps/executive_figure9-4737c62e159fad8a: tests/executive_figure9.rs

tests/executive_figure9.rs:
