/root/repo/target/debug/deps/properties-039a0620344ddc3b.d: crates/obs/tests/properties.rs

/root/repo/target/debug/deps/libproperties-039a0620344ddc3b.rmeta: crates/obs/tests/properties.rs

crates/obs/tests/properties.rs:
