/root/repo/target/debug/deps/micro-3186ae881433fbe5.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-3186ae881433fbe5.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
