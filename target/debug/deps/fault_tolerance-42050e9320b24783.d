/root/repo/target/debug/deps/fault_tolerance-42050e9320b24783.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-42050e9320b24783: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
