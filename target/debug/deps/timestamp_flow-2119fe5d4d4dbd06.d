/root/repo/target/debug/deps/timestamp_flow-2119fe5d4d4dbd06.d: tests/timestamp_flow.rs

/root/repo/target/debug/deps/timestamp_flow-2119fe5d4d4dbd06: tests/timestamp_flow.rs

tests/timestamp_flow.rs:
