/root/repo/target/debug/deps/e10_wan_of_lans-32f5a3a2c5fa1c82.d: crates/bench/src/bin/e10_wan_of_lans.rs Cargo.toml

/root/repo/target/debug/deps/libe10_wan_of_lans-32f5a3a2c5fa1c82.rmeta: crates/bench/src/bin/e10_wan_of_lans.rs Cargo.toml

crates/bench/src/bin/e10_wan_of_lans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
