/root/repo/target/debug/deps/e6_class_table-81016fe3e89a14a4.d: crates/bench/src/bin/e6_class_table.rs

/root/repo/target/debug/deps/e6_class_table-81016fe3e89a14a4: crates/bench/src/bin/e6_class_table.rs

crates/bench/src/bin/e6_class_table.rs:
