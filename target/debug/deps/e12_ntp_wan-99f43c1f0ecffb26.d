/root/repo/target/debug/deps/e12_ntp_wan-99f43c1f0ecffb26.d: crates/bench/src/bin/e12_ntp_wan.rs Cargo.toml

/root/repo/target/debug/deps/libe12_ntp_wan-99f43c1f0ecffb26.rmeta: crates/bench/src/bin/e12_ntp_wan.rs Cargo.toml

crates/bench/src/bin/e12_ntp_wan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
