/root/repo/target/debug/deps/proptests-5664fe14149c229d.d: crates/simcore/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5664fe14149c229d: crates/simcore/tests/proptests.rs

crates/simcore/tests/proptests.rs:
