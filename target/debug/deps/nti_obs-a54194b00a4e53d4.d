/root/repo/target/debug/deps/nti_obs-a54194b00a4e53d4.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/observer.rs crates/obs/src/quantile.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libnti_obs-a54194b00a4e53d4.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/observer.rs crates/obs/src/quantile.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/observer.rs:
crates/obs/src/quantile.rs:
crates/obs/src/trace.rs:
