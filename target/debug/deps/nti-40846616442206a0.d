/root/repo/target/debug/deps/nti-40846616442206a0.d: src/lib.rs

/root/repo/target/debug/deps/libnti-40846616442206a0.rlib: src/lib.rs

/root/repo/target/debug/deps/libnti-40846616442206a0.rmeta: src/lib.rs

src/lib.rs:
