/root/repo/target/debug/deps/timestamp_flow-a5a7707c8eb35648.d: tests/timestamp_flow.rs Cargo.toml

/root/repo/target/debug/deps/libtimestamp_flow-a5a7707c8eb35648.rmeta: tests/timestamp_flow.rs Cargo.toml

tests/timestamp_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
