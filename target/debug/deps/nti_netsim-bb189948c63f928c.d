/root/repo/target/debug/deps/nti_netsim-bb189948c63f928c.d: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

/root/repo/target/debug/deps/libnti_netsim-bb189948c63f928c.rmeta: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

crates/netsim/src/lib.rs:
crates/netsim/src/comco.rs:
crates/netsim/src/frame.rs:
crates/netsim/src/medium.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/wan.rs:
