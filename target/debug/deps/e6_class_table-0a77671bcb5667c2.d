/root/repo/target/debug/deps/e6_class_table-0a77671bcb5667c2.d: crates/bench/src/bin/e6_class_table.rs Cargo.toml

/root/repo/target/debug/deps/libe6_class_table-0a77671bcb5667c2.rmeta: crates/bench/src/bin/e6_class_table.rs Cargo.toml

crates/bench/src/bin/e6_class_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
