/root/repo/target/debug/deps/proptests-3c49003ad7ced934.d: crates/utcsu/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3c49003ad7ced934.rmeta: crates/utcsu/tests/proptests.rs Cargo.toml

crates/utcsu/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
