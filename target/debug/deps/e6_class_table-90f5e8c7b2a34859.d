/root/repo/target/debug/deps/e6_class_table-90f5e8c7b2a34859.d: crates/bench/src/bin/e6_class_table.rs

/root/repo/target/debug/deps/e6_class_table-90f5e8c7b2a34859: crates/bench/src/bin/e6_class_table.rs

crates/bench/src/bin/e6_class_table.rs:
