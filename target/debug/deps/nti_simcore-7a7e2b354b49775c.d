/root/repo/target/debug/deps/nti_simcore-7a7e2b354b49775c.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/ntp.rs crates/simcore/src/osc.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libnti_simcore-7a7e2b354b49775c.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/ntp.rs crates/simcore/src/osc.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/ntp.rs:
crates/simcore/src/osc.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
