/root/repo/target/debug/deps/nti_bench-b73b5a83165b3af0.d: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/debug/deps/nti_bench-b73b5a83165b3af0: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

crates/bench/src/lib.rs:
crates/bench/src/obs_cli.rs:
