/root/repo/target/debug/deps/e15_convergence_functions-2a963d06235a39cf.d: crates/bench/src/bin/e15_convergence_functions.rs Cargo.toml

/root/repo/target/debug/deps/libe15_convergence_functions-2a963d06235a39cf.rmeta: crates/bench/src/bin/e15_convergence_functions.rs Cargo.toml

crates/bench/src/bin/e15_convergence_functions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
