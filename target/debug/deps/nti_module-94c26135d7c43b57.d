/root/repo/target/debug/deps/nti_module-94c26135d7c43b57.d: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

/root/repo/target/debug/deps/libnti_module-94c26135d7c43b57.rmeta: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

crates/nti/src/lib.rs:
crates/nti/src/carrier.rs:
crates/nti/src/driver.rs:
crates/nti/src/sprom.rs:
