/root/repo/target/debug/deps/nti_utcsu-ad96da719fcc99f6.d: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs Cargo.toml

/root/repo/target/debug/deps/libnti_utcsu-ad96da719fcc99f6.rmeta: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs Cargo.toml

crates/utcsu/src/lib.rs:
crates/utcsu/src/acu.rs:
crates/utcsu/src/btu.rs:
crates/utcsu/src/itu.rs:
crates/utcsu/src/ltu.rs:
crates/utcsu/src/regs.rs:
crates/utcsu/src/snu.rs:
crates/utcsu/src/stamp.rs:
crates/utcsu/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
