/root/repo/target/debug/deps/nti_core-2abfa856691422a5.d: crates/core/src/lib.rs crates/core/src/algo.rs crates/core/src/aposteriori.rs crates/core/src/cluster.rs crates/core/src/convergence.rs crates/core/src/interval.rs crates/core/src/node.rs crates/core/src/ntp_sync.rs crates/core/src/params.rs crates/core/src/payload.rs crates/core/src/rate.rs crates/core/src/rtt.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libnti_core-2abfa856691422a5.rmeta: crates/core/src/lib.rs crates/core/src/algo.rs crates/core/src/aposteriori.rs crates/core/src/cluster.rs crates/core/src/convergence.rs crates/core/src/interval.rs crates/core/src/node.rs crates/core/src/ntp_sync.rs crates/core/src/params.rs crates/core/src/payload.rs crates/core/src/rate.rs crates/core/src/rtt.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/algo.rs:
crates/core/src/aposteriori.rs:
crates/core/src/cluster.rs:
crates/core/src/convergence.rs:
crates/core/src/interval.rs:
crates/core/src/node.rs:
crates/core/src/ntp_sync.rs:
crates/core/src/params.rs:
crates/core/src/payload.rs:
crates/core/src/rate.rs:
crates/core/src/rtt.rs:
crates/core/src/validate.rs:
