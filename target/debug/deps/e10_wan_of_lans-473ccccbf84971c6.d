/root/repo/target/debug/deps/e10_wan_of_lans-473ccccbf84971c6.d: crates/bench/src/bin/e10_wan_of_lans.rs

/root/repo/target/debug/deps/e10_wan_of_lans-473ccccbf84971c6: crates/bench/src/bin/e10_wan_of_lans.rs

crates/bench/src/bin/e10_wan_of_lans.rs:
