/root/repo/target/debug/deps/e7_adder_clock-7d51551831f1b546.d: crates/bench/src/bin/e7_adder_clock.rs

/root/repo/target/debug/deps/e7_adder_clock-7d51551831f1b546: crates/bench/src/bin/e7_adder_clock.rs

crates/bench/src/bin/e7_adder_clock.rs:
