/root/repo/target/debug/deps/nti_simcore-10c7836fde3740e7.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/ntp.rs crates/simcore/src/osc.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libnti_simcore-10c7836fde3740e7.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/ntp.rs crates/simcore/src/osc.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/ntp.rs:
crates/simcore/src/osc.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
