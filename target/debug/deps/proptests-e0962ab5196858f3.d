/root/repo/target/debug/deps/proptests-e0962ab5196858f3.d: crates/gps/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-e0962ab5196858f3.rmeta: crates/gps/tests/proptests.rs

crates/gps/tests/proptests.rs:
