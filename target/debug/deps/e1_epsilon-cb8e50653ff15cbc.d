/root/repo/target/debug/deps/e1_epsilon-cb8e50653ff15cbc.d: crates/bench/src/bin/e1_epsilon.rs Cargo.toml

/root/repo/target/debug/deps/libe1_epsilon-cb8e50653ff15cbc.rmeta: crates/bench/src/bin/e1_epsilon.rs Cargo.toml

crates/bench/src/bin/e1_epsilon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
