/root/repo/target/debug/deps/e2_granularity-9094c06b5b7355f9.d: crates/bench/src/bin/e2_granularity.rs

/root/repo/target/debug/deps/libe2_granularity-9094c06b5b7355f9.rmeta: crates/bench/src/bin/e2_granularity.rs

crates/bench/src/bin/e2_granularity.rs:
