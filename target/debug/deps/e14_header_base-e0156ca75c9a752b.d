/root/repo/target/debug/deps/e14_header_base-e0156ca75c9a752b.d: crates/bench/src/bin/e14_header_base.rs

/root/repo/target/debug/deps/libe14_header_base-e0156ca75c9a752b.rmeta: crates/bench/src/bin/e14_header_base.rs

crates/bench/src/bin/e14_header_base.rs:
