/root/repo/target/debug/deps/e7_adder_clock-2fda97f9fdb17d9a.d: crates/bench/src/bin/e7_adder_clock.rs

/root/repo/target/debug/deps/libe7_adder_clock-2fda97f9fdb17d9a.rmeta: crates/bench/src/bin/e7_adder_clock.rs

crates/bench/src/bin/e7_adder_clock.rs:
