/root/repo/target/debug/deps/e1_epsilon-ffe62d85e4ad1277.d: crates/bench/src/bin/e1_epsilon.rs

/root/repo/target/debug/deps/e1_epsilon-ffe62d85e4ad1277: crates/bench/src/bin/e1_epsilon.rs

crates/bench/src/bin/e1_epsilon.rs:
