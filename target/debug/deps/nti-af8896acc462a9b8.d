/root/repo/target/debug/deps/nti-af8896acc462a9b8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnti-af8896acc462a9b8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
