/root/repo/target/debug/deps/e7_adder_clock-095e375b8cf3ba33.d: crates/bench/src/bin/e7_adder_clock.rs

/root/repo/target/debug/deps/libe7_adder_clock-095e375b8cf3ba33.rmeta: crates/bench/src/bin/e7_adder_clock.rs

crates/bench/src/bin/e7_adder_clock.rs:
