/root/repo/target/debug/deps/nti_bench-35125dae36a88671.d: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs Cargo.toml

/root/repo/target/debug/deps/libnti_bench-35125dae36a88671.rmeta: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/obs_cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
