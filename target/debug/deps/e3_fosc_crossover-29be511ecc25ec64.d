/root/repo/target/debug/deps/e3_fosc_crossover-29be511ecc25ec64.d: crates/bench/src/bin/e3_fosc_crossover.rs

/root/repo/target/debug/deps/e3_fosc_crossover-29be511ecc25ec64: crates/bench/src/bin/e3_fosc_crossover.rs

crates/bench/src/bin/e3_fosc_crossover.rs:
