/root/repo/target/debug/deps/e5_gps_validation-8a3deb67327896d6.d: crates/bench/src/bin/e5_gps_validation.rs

/root/repo/target/debug/deps/e5_gps_validation-8a3deb67327896d6: crates/bench/src/bin/e5_gps_validation.rs

crates/bench/src/bin/e5_gps_validation.rs:
