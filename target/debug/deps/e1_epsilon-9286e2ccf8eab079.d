/root/repo/target/debug/deps/e1_epsilon-9286e2ccf8eab079.d: crates/bench/src/bin/e1_epsilon.rs

/root/repo/target/debug/deps/e1_epsilon-9286e2ccf8eab079: crates/bench/src/bin/e1_epsilon.rs

crates/bench/src/bin/e1_epsilon.rs:
