/root/repo/target/debug/deps/nti_bench-12c8f2a051de9789.d: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/debug/deps/nti_bench-12c8f2a051de9789: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

crates/bench/src/lib.rs:
crates/bench/src/obs_cli.rs:
