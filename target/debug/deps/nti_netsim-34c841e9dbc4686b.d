/root/repo/target/debug/deps/nti_netsim-34c841e9dbc4686b.d: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

/root/repo/target/debug/deps/libnti_netsim-34c841e9dbc4686b.rlib: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

/root/repo/target/debug/deps/libnti_netsim-34c841e9dbc4686b.rmeta: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

crates/netsim/src/lib.rs:
crates/netsim/src/comco.rs:
crates/netsim/src/frame.rs:
crates/netsim/src/medium.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/wan.rs:
