/root/repo/target/debug/deps/e12_ntp_wan-edc09248707bc76a.d: crates/bench/src/bin/e12_ntp_wan.rs

/root/repo/target/debug/deps/e12_ntp_wan-edc09248707bc76a: crates/bench/src/bin/e12_ntp_wan.rs

crates/bench/src/bin/e12_ntp_wan.rs:
