/root/repo/target/debug/deps/e10_wan_of_lans-ea27dd0496e293a4.d: crates/bench/src/bin/e10_wan_of_lans.rs

/root/repo/target/debug/deps/libe10_wan_of_lans-ea27dd0496e293a4.rmeta: crates/bench/src/bin/e10_wan_of_lans.rs

crates/bench/src/bin/e10_wan_of_lans.rs:
