/root/repo/target/debug/deps/proptests-b919e5c45cadbfee.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b919e5c45cadbfee: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
