/root/repo/target/debug/deps/executive_figure9-a2927688068978e1.d: tests/executive_figure9.rs Cargo.toml

/root/repo/target/debug/deps/libexecutive_figure9-a2927688068978e1.rmeta: tests/executive_figure9.rs Cargo.toml

tests/executive_figure9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
