/root/repo/target/debug/deps/e9_sixteen_nodes-f50dba0c1f545908.d: crates/bench/src/bin/e9_sixteen_nodes.rs Cargo.toml

/root/repo/target/debug/deps/libe9_sixteen_nodes-f50dba0c1f545908.rmeta: crates/bench/src/bin/e9_sixteen_nodes.rs Cargo.toml

crates/bench/src/bin/e9_sixteen_nodes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
