/root/repo/target/debug/deps/nti_bench-e0c99fe1bf1f2f47.d: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/debug/deps/libnti_bench-e0c99fe1bf1f2f47.rmeta: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

crates/bench/src/lib.rs:
crates/bench/src/obs_cli.rs:
