/root/repo/target/debug/deps/nti-4a8c681411bdb396.d: src/lib.rs

/root/repo/target/debug/deps/libnti-4a8c681411bdb396.rmeta: src/lib.rs

src/lib.rs:
