/root/repo/target/debug/deps/observability-ec6f3fa540092837.d: crates/core/tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-ec6f3fa540092837.rmeta: crates/core/tests/observability.rs Cargo.toml

crates/core/tests/observability.rs:
Cargo.toml:

# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
