/root/repo/target/debug/deps/e3_fosc_crossover-3dc07181052ff64f.d: crates/bench/src/bin/e3_fosc_crossover.rs

/root/repo/target/debug/deps/e3_fosc_crossover-3dc07181052ff64f: crates/bench/src/bin/e3_fosc_crossover.rs

crates/bench/src/bin/e3_fosc_crossover.rs:
