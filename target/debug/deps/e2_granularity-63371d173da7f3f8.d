/root/repo/target/debug/deps/e2_granularity-63371d173da7f3f8.d: crates/bench/src/bin/e2_granularity.rs

/root/repo/target/debug/deps/e2_granularity-63371d173da7f3f8: crates/bench/src/bin/e2_granularity.rs

crates/bench/src/bin/e2_granularity.rs:
