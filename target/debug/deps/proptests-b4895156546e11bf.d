/root/repo/target/debug/deps/proptests-b4895156546e11bf.d: crates/utcsu/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b4895156546e11bf: crates/utcsu/tests/proptests.rs

crates/utcsu/tests/proptests.rs:
