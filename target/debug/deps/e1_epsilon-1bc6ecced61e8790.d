/root/repo/target/debug/deps/e1_epsilon-1bc6ecced61e8790.d: crates/bench/src/bin/e1_epsilon.rs

/root/repo/target/debug/deps/e1_epsilon-1bc6ecced61e8790: crates/bench/src/bin/e1_epsilon.rs

crates/bench/src/bin/e1_epsilon.rs:
