/root/repo/target/debug/deps/e9_sixteen_nodes-921840ea5c48f14f.d: crates/bench/src/bin/e9_sixteen_nodes.rs

/root/repo/target/debug/deps/libe9_sixteen_nodes-921840ea5c48f14f.rmeta: crates/bench/src/bin/e9_sixteen_nodes.rs

crates/bench/src/bin/e9_sixteen_nodes.rs:
