/root/repo/target/debug/deps/e11_rtt_measurement-01822a4bb71f5d27.d: crates/bench/src/bin/e11_rtt_measurement.rs

/root/repo/target/debug/deps/e11_rtt_measurement-01822a4bb71f5d27: crates/bench/src/bin/e11_rtt_measurement.rs

crates/bench/src/bin/e11_rtt_measurement.rs:
