/root/repo/target/debug/deps/nti_netsim-b9320a54b098897d.d: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

/root/repo/target/debug/deps/nti_netsim-b9320a54b098897d: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

crates/netsim/src/lib.rs:
crates/netsim/src/comco.rs:
crates/netsim/src/frame.rs:
crates/netsim/src/medium.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/wan.rs:
