/root/repo/target/debug/deps/executive_figure9-8ee0d423834ec3fa.d: tests/executive_figure9.rs

/root/repo/target/debug/deps/executive_figure9-8ee0d423834ec3fa: tests/executive_figure9.rs

tests/executive_figure9.rs:
