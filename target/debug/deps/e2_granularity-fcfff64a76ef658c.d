/root/repo/target/debug/deps/e2_granularity-fcfff64a76ef658c.d: crates/bench/src/bin/e2_granularity.rs Cargo.toml

/root/repo/target/debug/deps/libe2_granularity-fcfff64a76ef658c.rmeta: crates/bench/src/bin/e2_granularity.rs Cargo.toml

crates/bench/src/bin/e2_granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
