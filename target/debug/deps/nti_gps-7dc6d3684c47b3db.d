/root/repo/target/debug/deps/nti_gps-7dc6d3684c47b3db.d: crates/gps/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnti_gps-7dc6d3684c47b3db.rmeta: crates/gps/src/lib.rs Cargo.toml

crates/gps/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
