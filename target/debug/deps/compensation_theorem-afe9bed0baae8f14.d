/root/repo/target/debug/deps/compensation_theorem-afe9bed0baae8f14.d: crates/core/tests/compensation_theorem.rs

/root/repo/target/debug/deps/libcompensation_theorem-afe9bed0baae8f14.rmeta: crates/core/tests/compensation_theorem.rs

crates/core/tests/compensation_theorem.rs:
