/root/repo/target/debug/deps/nti_kernel-711f60f9d4954184.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

/root/repo/target/debug/deps/libnti_kernel-711f60f9d4954184.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
