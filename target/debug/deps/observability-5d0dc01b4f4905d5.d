/root/repo/target/debug/deps/observability-5d0dc01b4f4905d5.d: crates/core/tests/observability.rs

/root/repo/target/debug/deps/observability-5d0dc01b4f4905d5: crates/core/tests/observability.rs

crates/core/tests/observability.rs:

# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
