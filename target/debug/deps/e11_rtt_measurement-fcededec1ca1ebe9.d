/root/repo/target/debug/deps/e11_rtt_measurement-fcededec1ca1ebe9.d: crates/bench/src/bin/e11_rtt_measurement.rs

/root/repo/target/debug/deps/e11_rtt_measurement-fcededec1ca1ebe9: crates/bench/src/bin/e11_rtt_measurement.rs

crates/bench/src/bin/e11_rtt_measurement.rs:
