/root/repo/target/debug/deps/observability-d87db7f54c93921d.d: crates/core/tests/observability.rs

/root/repo/target/debug/deps/libobservability-d87db7f54c93921d.rmeta: crates/core/tests/observability.rs

crates/core/tests/observability.rs:

# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
