/root/repo/target/debug/deps/nti_netsim-e4094a0850e169c1.d: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs Cargo.toml

/root/repo/target/debug/deps/libnti_netsim-e4094a0850e169c1.rmeta: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/comco.rs:
crates/netsim/src/frame.rs:
crates/netsim/src/medium.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/wan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
