/root/repo/target/debug/deps/e7_adder_clock-9603abe0e69a64f0.d: crates/bench/src/bin/e7_adder_clock.rs

/root/repo/target/debug/deps/e7_adder_clock-9603abe0e69a64f0: crates/bench/src/bin/e7_adder_clock.rs

crates/bench/src/bin/e7_adder_clock.rs:
