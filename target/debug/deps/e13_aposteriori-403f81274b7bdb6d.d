/root/repo/target/debug/deps/e13_aposteriori-403f81274b7bdb6d.d: crates/bench/src/bin/e13_aposteriori.rs

/root/repo/target/debug/deps/e13_aposteriori-403f81274b7bdb6d: crates/bench/src/bin/e13_aposteriori.rs

crates/bench/src/bin/e13_aposteriori.rs:
