/root/repo/target/debug/deps/e10_wan_of_lans-4fd92657f544e3d1.d: crates/bench/src/bin/e10_wan_of_lans.rs

/root/repo/target/debug/deps/libe10_wan_of_lans-4fd92657f544e3d1.rmeta: crates/bench/src/bin/e10_wan_of_lans.rs

crates/bench/src/bin/e10_wan_of_lans.rs:
