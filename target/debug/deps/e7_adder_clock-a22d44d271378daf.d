/root/repo/target/debug/deps/e7_adder_clock-a22d44d271378daf.d: crates/bench/src/bin/e7_adder_clock.rs Cargo.toml

/root/repo/target/debug/deps/libe7_adder_clock-a22d44d271378daf.rmeta: crates/bench/src/bin/e7_adder_clock.rs Cargo.toml

crates/bench/src/bin/e7_adder_clock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
