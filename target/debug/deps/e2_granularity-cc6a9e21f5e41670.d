/root/repo/target/debug/deps/e2_granularity-cc6a9e21f5e41670.d: crates/bench/src/bin/e2_granularity.rs

/root/repo/target/debug/deps/e2_granularity-cc6a9e21f5e41670: crates/bench/src/bin/e2_granularity.rs

crates/bench/src/bin/e2_granularity.rs:
