/root/repo/target/debug/deps/e4_rate_sync-fdc9b34181c5918d.d: crates/bench/src/bin/e4_rate_sync.rs

/root/repo/target/debug/deps/libe4_rate_sync-fdc9b34181c5918d.rmeta: crates/bench/src/bin/e4_rate_sync.rs

crates/bench/src/bin/e4_rate_sync.rs:
