/root/repo/target/debug/deps/hardware_features-868692eece6ca99d.d: tests/hardware_features.rs

/root/repo/target/debug/deps/libhardware_features-868692eece6ca99d.rmeta: tests/hardware_features.rs

tests/hardware_features.rs:
