/root/repo/target/debug/deps/e12_ntp_wan-68c0e7d8dd668e9f.d: crates/bench/src/bin/e12_ntp_wan.rs

/root/repo/target/debug/deps/libe12_ntp_wan-68c0e7d8dd668e9f.rmeta: crates/bench/src/bin/e12_ntp_wan.rs

crates/bench/src/bin/e12_ntp_wan.rs:
