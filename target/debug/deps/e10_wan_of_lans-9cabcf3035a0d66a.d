/root/repo/target/debug/deps/e10_wan_of_lans-9cabcf3035a0d66a.d: crates/bench/src/bin/e10_wan_of_lans.rs

/root/repo/target/debug/deps/e10_wan_of_lans-9cabcf3035a0d66a: crates/bench/src/bin/e10_wan_of_lans.rs

crates/bench/src/bin/e10_wan_of_lans.rs:
