/root/repo/target/debug/deps/e5_gps_validation-087903b5add73a08.d: crates/bench/src/bin/e5_gps_validation.rs

/root/repo/target/debug/deps/e5_gps_validation-087903b5add73a08: crates/bench/src/bin/e5_gps_validation.rs

crates/bench/src/bin/e5_gps_validation.rs:
