/root/repo/target/debug/deps/nti_kernel-47435e7b93a5a409.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs Cargo.toml

/root/repo/target/debug/deps/libnti_kernel-47435e7b93a5a409.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
