/root/repo/target/debug/deps/nti_module-139aa6b085e654b1.d: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

/root/repo/target/debug/deps/nti_module-139aa6b085e654b1: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

crates/nti/src/lib.rs:
crates/nti/src/carrier.rs:
crates/nti/src/driver.rs:
crates/nti/src/sprom.rs:
