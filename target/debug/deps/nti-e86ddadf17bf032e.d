/root/repo/target/debug/deps/nti-e86ddadf17bf032e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnti-e86ddadf17bf032e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
