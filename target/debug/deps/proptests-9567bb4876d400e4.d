/root/repo/target/debug/deps/proptests-9567bb4876d400e4.d: crates/simcore/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9567bb4876d400e4.rmeta: crates/simcore/tests/proptests.rs Cargo.toml

crates/simcore/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
