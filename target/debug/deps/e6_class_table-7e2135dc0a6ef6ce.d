/root/repo/target/debug/deps/e6_class_table-7e2135dc0a6ef6ce.d: crates/bench/src/bin/e6_class_table.rs

/root/repo/target/debug/deps/libe6_class_table-7e2135dc0a6ef6ce.rmeta: crates/bench/src/bin/e6_class_table.rs

crates/bench/src/bin/e6_class_table.rs:
