/root/repo/target/debug/deps/containment-a2cda59d874263f9.d: tests/containment.rs

/root/repo/target/debug/deps/containment-a2cda59d874263f9: tests/containment.rs

tests/containment.rs:
