/root/repo/target/debug/deps/nti_gps-54073c0eaa59cfba.d: crates/gps/src/lib.rs

/root/repo/target/debug/deps/libnti_gps-54073c0eaa59cfba.rmeta: crates/gps/src/lib.rs

crates/gps/src/lib.rs:
