/root/repo/target/debug/deps/micro-0f7c59485991739f.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-0f7c59485991739f.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
