/root/repo/target/debug/deps/e15_convergence_functions-2c160f634b4a718c.d: crates/bench/src/bin/e15_convergence_functions.rs

/root/repo/target/debug/deps/e15_convergence_functions-2c160f634b4a718c: crates/bench/src/bin/e15_convergence_functions.rs

crates/bench/src/bin/e15_convergence_functions.rs:
