/root/repo/target/debug/deps/e5_gps_validation-e42fba2b830c23ee.d: crates/bench/src/bin/e5_gps_validation.rs

/root/repo/target/debug/deps/libe5_gps_validation-e42fba2b830c23ee.rmeta: crates/bench/src/bin/e5_gps_validation.rs

crates/bench/src/bin/e5_gps_validation.rs:
