/root/repo/target/debug/deps/e3_fosc_crossover-7bc2b4a6cb262875.d: crates/bench/src/bin/e3_fosc_crossover.rs

/root/repo/target/debug/deps/e3_fosc_crossover-7bc2b4a6cb262875: crates/bench/src/bin/e3_fosc_crossover.rs

crates/bench/src/bin/e3_fosc_crossover.rs:
