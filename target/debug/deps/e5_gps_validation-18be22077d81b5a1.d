/root/repo/target/debug/deps/e5_gps_validation-18be22077d81b5a1.d: crates/bench/src/bin/e5_gps_validation.rs

/root/repo/target/debug/deps/e5_gps_validation-18be22077d81b5a1: crates/bench/src/bin/e5_gps_validation.rs

crates/bench/src/bin/e5_gps_validation.rs:
