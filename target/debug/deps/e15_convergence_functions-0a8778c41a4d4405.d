/root/repo/target/debug/deps/e15_convergence_functions-0a8778c41a4d4405.d: crates/bench/src/bin/e15_convergence_functions.rs

/root/repo/target/debug/deps/libe15_convergence_functions-0a8778c41a4d4405.rmeta: crates/bench/src/bin/e15_convergence_functions.rs

crates/bench/src/bin/e15_convergence_functions.rs:
