/root/repo/target/debug/deps/nti_bench-df7f80e640e371e4.d: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs Cargo.toml

/root/repo/target/debug/deps/libnti_bench-df7f80e640e371e4.rmeta: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/obs_cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
