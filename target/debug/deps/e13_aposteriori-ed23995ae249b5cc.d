/root/repo/target/debug/deps/e13_aposteriori-ed23995ae249b5cc.d: crates/bench/src/bin/e13_aposteriori.rs Cargo.toml

/root/repo/target/debug/deps/libe13_aposteriori-ed23995ae249b5cc.rmeta: crates/bench/src/bin/e13_aposteriori.rs Cargo.toml

crates/bench/src/bin/e13_aposteriori.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
