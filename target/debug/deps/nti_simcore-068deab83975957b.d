/root/repo/target/debug/deps/nti_simcore-068deab83975957b.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/ntp.rs crates/simcore/src/osc.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libnti_simcore-068deab83975957b.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/ntp.rs crates/simcore/src/osc.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/ntp.rs:
crates/simcore/src/osc.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
