/root/repo/target/debug/deps/nti_bench-315e148f7d2c50d0.d: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/debug/deps/libnti_bench-315e148f7d2c50d0.rlib: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/debug/deps/libnti_bench-315e148f7d2c50d0.rmeta: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

crates/bench/src/lib.rs:
crates/bench/src/obs_cli.rs:
