/root/repo/target/debug/deps/e1_epsilon-b11063c3af2379b4.d: crates/bench/src/bin/e1_epsilon.rs

/root/repo/target/debug/deps/libe1_epsilon-b11063c3af2379b4.rmeta: crates/bench/src/bin/e1_epsilon.rs

crates/bench/src/bin/e1_epsilon.rs:
