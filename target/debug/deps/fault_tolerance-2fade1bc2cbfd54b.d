/root/repo/target/debug/deps/fault_tolerance-2fade1bc2cbfd54b.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-2fade1bc2cbfd54b: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
