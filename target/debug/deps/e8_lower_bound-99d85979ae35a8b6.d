/root/repo/target/debug/deps/e8_lower_bound-99d85979ae35a8b6.d: crates/bench/src/bin/e8_lower_bound.rs

/root/repo/target/debug/deps/e8_lower_bound-99d85979ae35a8b6: crates/bench/src/bin/e8_lower_bound.rs

crates/bench/src/bin/e8_lower_bound.rs:
