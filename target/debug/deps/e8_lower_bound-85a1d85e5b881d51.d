/root/repo/target/debug/deps/e8_lower_bound-85a1d85e5b881d51.d: crates/bench/src/bin/e8_lower_bound.rs Cargo.toml

/root/repo/target/debug/deps/libe8_lower_bound-85a1d85e5b881d51.rmeta: crates/bench/src/bin/e8_lower_bound.rs Cargo.toml

crates/bench/src/bin/e8_lower_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
