/root/repo/target/debug/deps/e7_adder_clock-c33088b17266ebe3.d: crates/bench/src/bin/e7_adder_clock.rs

/root/repo/target/debug/deps/e7_adder_clock-c33088b17266ebe3: crates/bench/src/bin/e7_adder_clock.rs

crates/bench/src/bin/e7_adder_clock.rs:
