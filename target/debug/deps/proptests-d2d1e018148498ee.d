/root/repo/target/debug/deps/proptests-d2d1e018148498ee.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d2d1e018148498ee.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
