/root/repo/target/debug/deps/nti_utcsu-282cf2e13a2a5f86.d: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs

/root/repo/target/debug/deps/libnti_utcsu-282cf2e13a2a5f86.rlib: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs

/root/repo/target/debug/deps/libnti_utcsu-282cf2e13a2a5f86.rmeta: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs

crates/utcsu/src/lib.rs:
crates/utcsu/src/acu.rs:
crates/utcsu/src/btu.rs:
crates/utcsu/src/itu.rs:
crates/utcsu/src/ltu.rs:
crates/utcsu/src/regs.rs:
crates/utcsu/src/snu.rs:
crates/utcsu/src/stamp.rs:
crates/utcsu/src/timer.rs:
