/root/repo/target/release/deps/e8_lower_bound-05addd305799ba70.d: crates/bench/src/bin/e8_lower_bound.rs

/root/repo/target/release/deps/e8_lower_bound-05addd305799ba70: crates/bench/src/bin/e8_lower_bound.rs

crates/bench/src/bin/e8_lower_bound.rs:
