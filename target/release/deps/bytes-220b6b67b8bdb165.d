/root/repo/target/release/deps/bytes-220b6b67b8bdb165.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-220b6b67b8bdb165.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-220b6b67b8bdb165.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
