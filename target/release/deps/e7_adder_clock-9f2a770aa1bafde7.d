/root/repo/target/release/deps/e7_adder_clock-9f2a770aa1bafde7.d: crates/bench/src/bin/e7_adder_clock.rs

/root/repo/target/release/deps/e7_adder_clock-9f2a770aa1bafde7: crates/bench/src/bin/e7_adder_clock.rs

crates/bench/src/bin/e7_adder_clock.rs:
