/root/repo/target/release/deps/nti_obs-149e67b489579b76.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/observer.rs crates/obs/src/quantile.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libnti_obs-149e67b489579b76.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/observer.rs crates/obs/src/quantile.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libnti_obs-149e67b489579b76.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/observer.rs crates/obs/src/quantile.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/observer.rs:
crates/obs/src/quantile.rs:
crates/obs/src/trace.rs:
