/root/repo/target/release/deps/e5_gps_validation-3fe554b10a624ae0.d: crates/bench/src/bin/e5_gps_validation.rs

/root/repo/target/release/deps/e5_gps_validation-3fe554b10a624ae0: crates/bench/src/bin/e5_gps_validation.rs

crates/bench/src/bin/e5_gps_validation.rs:
