/root/repo/target/release/deps/e13_aposteriori-8d125e581a54c5d0.d: crates/bench/src/bin/e13_aposteriori.rs

/root/repo/target/release/deps/e13_aposteriori-8d125e581a54c5d0: crates/bench/src/bin/e13_aposteriori.rs

crates/bench/src/bin/e13_aposteriori.rs:
