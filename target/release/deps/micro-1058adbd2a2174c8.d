/root/repo/target/release/deps/micro-1058adbd2a2174c8.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-1058adbd2a2174c8: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
