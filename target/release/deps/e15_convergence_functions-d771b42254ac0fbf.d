/root/repo/target/release/deps/e15_convergence_functions-d771b42254ac0fbf.d: crates/bench/src/bin/e15_convergence_functions.rs

/root/repo/target/release/deps/e15_convergence_functions-d771b42254ac0fbf: crates/bench/src/bin/e15_convergence_functions.rs

crates/bench/src/bin/e15_convergence_functions.rs:
