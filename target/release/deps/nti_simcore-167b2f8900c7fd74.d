/root/repo/target/release/deps/nti_simcore-167b2f8900c7fd74.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/ntp.rs crates/simcore/src/osc.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libnti_simcore-167b2f8900c7fd74.rlib: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/ntp.rs crates/simcore/src/osc.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libnti_simcore-167b2f8900c7fd74.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/ntp.rs crates/simcore/src/osc.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/ntp.rs:
crates/simcore/src/osc.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
