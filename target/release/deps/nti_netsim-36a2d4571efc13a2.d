/root/repo/target/release/deps/nti_netsim-36a2d4571efc13a2.d: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

/root/repo/target/release/deps/libnti_netsim-36a2d4571efc13a2.rlib: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

/root/repo/target/release/deps/libnti_netsim-36a2d4571efc13a2.rmeta: crates/netsim/src/lib.rs crates/netsim/src/comco.rs crates/netsim/src/frame.rs crates/netsim/src/medium.rs crates/netsim/src/topology.rs crates/netsim/src/wan.rs

crates/netsim/src/lib.rs:
crates/netsim/src/comco.rs:
crates/netsim/src/frame.rs:
crates/netsim/src/medium.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/wan.rs:
