/root/repo/target/release/deps/e9_sixteen_nodes-2650537edf52a69b.d: crates/bench/src/bin/e9_sixteen_nodes.rs

/root/repo/target/release/deps/e9_sixteen_nodes-2650537edf52a69b: crates/bench/src/bin/e9_sixteen_nodes.rs

crates/bench/src/bin/e9_sixteen_nodes.rs:
