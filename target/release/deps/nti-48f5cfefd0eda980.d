/root/repo/target/release/deps/nti-48f5cfefd0eda980.d: src/lib.rs

/root/repo/target/release/deps/libnti-48f5cfefd0eda980.rlib: src/lib.rs

/root/repo/target/release/deps/libnti-48f5cfefd0eda980.rmeta: src/lib.rs

src/lib.rs:
