/root/repo/target/release/deps/nti_utcsu-d7cea273e76737c9.d: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs

/root/repo/target/release/deps/libnti_utcsu-d7cea273e76737c9.rlib: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs

/root/repo/target/release/deps/libnti_utcsu-d7cea273e76737c9.rmeta: crates/utcsu/src/lib.rs crates/utcsu/src/acu.rs crates/utcsu/src/btu.rs crates/utcsu/src/itu.rs crates/utcsu/src/ltu.rs crates/utcsu/src/regs.rs crates/utcsu/src/snu.rs crates/utcsu/src/stamp.rs crates/utcsu/src/timer.rs

crates/utcsu/src/lib.rs:
crates/utcsu/src/acu.rs:
crates/utcsu/src/btu.rs:
crates/utcsu/src/itu.rs:
crates/utcsu/src/ltu.rs:
crates/utcsu/src/regs.rs:
crates/utcsu/src/snu.rs:
crates/utcsu/src/stamp.rs:
crates/utcsu/src/timer.rs:
