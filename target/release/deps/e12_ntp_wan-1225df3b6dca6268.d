/root/repo/target/release/deps/e12_ntp_wan-1225df3b6dca6268.d: crates/bench/src/bin/e12_ntp_wan.rs

/root/repo/target/release/deps/e12_ntp_wan-1225df3b6dca6268: crates/bench/src/bin/e12_ntp_wan.rs

crates/bench/src/bin/e12_ntp_wan.rs:
