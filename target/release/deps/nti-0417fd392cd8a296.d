/root/repo/target/release/deps/nti-0417fd392cd8a296.d: src/lib.rs

/root/repo/target/release/deps/libnti-0417fd392cd8a296.rlib: src/lib.rs

/root/repo/target/release/deps/libnti-0417fd392cd8a296.rmeta: src/lib.rs

src/lib.rs:
