/root/repo/target/release/deps/e10_wan_of_lans-25a8408d6352ea2d.d: crates/bench/src/bin/e10_wan_of_lans.rs

/root/repo/target/release/deps/e10_wan_of_lans-25a8408d6352ea2d: crates/bench/src/bin/e10_wan_of_lans.rs

crates/bench/src/bin/e10_wan_of_lans.rs:
