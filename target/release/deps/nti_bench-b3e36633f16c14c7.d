/root/repo/target/release/deps/nti_bench-b3e36633f16c14c7.d: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/release/deps/libnti_bench-b3e36633f16c14c7.rlib: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

/root/repo/target/release/deps/libnti_bench-b3e36633f16c14c7.rmeta: crates/bench/src/lib.rs crates/bench/src/obs_cli.rs

crates/bench/src/lib.rs:
crates/bench/src/obs_cli.rs:
