/root/repo/target/release/deps/e4_rate_sync-82be136462b0b6c7.d: crates/bench/src/bin/e4_rate_sync.rs

/root/repo/target/release/deps/e4_rate_sync-82be136462b0b6c7: crates/bench/src/bin/e4_rate_sync.rs

crates/bench/src/bin/e4_rate_sync.rs:
