/root/repo/target/release/deps/nti_gps-74c05a79f5b0d1a2.d: crates/gps/src/lib.rs

/root/repo/target/release/deps/libnti_gps-74c05a79f5b0d1a2.rlib: crates/gps/src/lib.rs

/root/repo/target/release/deps/libnti_gps-74c05a79f5b0d1a2.rmeta: crates/gps/src/lib.rs

crates/gps/src/lib.rs:
