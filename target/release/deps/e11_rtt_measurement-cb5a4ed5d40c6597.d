/root/repo/target/release/deps/e11_rtt_measurement-cb5a4ed5d40c6597.d: crates/bench/src/bin/e11_rtt_measurement.rs

/root/repo/target/release/deps/e11_rtt_measurement-cb5a4ed5d40c6597: crates/bench/src/bin/e11_rtt_measurement.rs

crates/bench/src/bin/e11_rtt_measurement.rs:
