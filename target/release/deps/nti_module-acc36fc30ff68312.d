/root/repo/target/release/deps/nti_module-acc36fc30ff68312.d: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

/root/repo/target/release/deps/libnti_module-acc36fc30ff68312.rlib: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

/root/repo/target/release/deps/libnti_module-acc36fc30ff68312.rmeta: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

crates/nti/src/lib.rs:
crates/nti/src/carrier.rs:
crates/nti/src/driver.rs:
crates/nti/src/sprom.rs:
