/root/repo/target/release/deps/e2_granularity-a9f7c584b399b87a.d: crates/bench/src/bin/e2_granularity.rs

/root/repo/target/release/deps/e2_granularity-a9f7c584b399b87a: crates/bench/src/bin/e2_granularity.rs

crates/bench/src/bin/e2_granularity.rs:
