/root/repo/target/release/deps/e6_class_table-8d5a7d8ec8263138.d: crates/bench/src/bin/e6_class_table.rs

/root/repo/target/release/deps/e6_class_table-8d5a7d8ec8263138: crates/bench/src/bin/e6_class_table.rs

crates/bench/src/bin/e6_class_table.rs:
