/root/repo/target/release/deps/e3_fosc_crossover-8eca43511eba9c9a.d: crates/bench/src/bin/e3_fosc_crossover.rs

/root/repo/target/release/deps/e3_fosc_crossover-8eca43511eba9c9a: crates/bench/src/bin/e3_fosc_crossover.rs

crates/bench/src/bin/e3_fosc_crossover.rs:
