/root/repo/target/release/deps/nti_module-ceebcea2ba0d5a4f.d: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

/root/repo/target/release/deps/libnti_module-ceebcea2ba0d5a4f.rlib: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

/root/repo/target/release/deps/libnti_module-ceebcea2ba0d5a4f.rmeta: crates/nti/src/lib.rs crates/nti/src/carrier.rs crates/nti/src/driver.rs crates/nti/src/sprom.rs

crates/nti/src/lib.rs:
crates/nti/src/carrier.rs:
crates/nti/src/driver.rs:
crates/nti/src/sprom.rs:
