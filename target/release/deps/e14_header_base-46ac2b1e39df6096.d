/root/repo/target/release/deps/e14_header_base-46ac2b1e39df6096.d: crates/bench/src/bin/e14_header_base.rs

/root/repo/target/release/deps/e14_header_base-46ac2b1e39df6096: crates/bench/src/bin/e14_header_base.rs

crates/bench/src/bin/e14_header_base.rs:
