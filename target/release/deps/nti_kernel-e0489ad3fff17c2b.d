/root/repo/target/release/deps/nti_kernel-e0489ad3fff17c2b.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

/root/repo/target/release/deps/libnti_kernel-e0489ad3fff17c2b.rlib: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

/root/repo/target/release/deps/libnti_kernel-e0489ad3fff17c2b.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
