/root/repo/target/release/deps/e1_epsilon-986c808f6991709d.d: crates/bench/src/bin/e1_epsilon.rs

/root/repo/target/release/deps/e1_epsilon-986c808f6991709d: crates/bench/src/bin/e1_epsilon.rs

crates/bench/src/bin/e1_epsilon.rs:
